#include "nnp/conv_stack.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tkmc {
namespace {

Network::Snapshot makeSnapshot(const std::vector<int>& channels,
                               std::uint64_t seed) {
  Network net(channels);
  Rng rng(seed);
  net.initHe(rng);
  return net.foldedSnapshot();
}

std::vector<float> randomInput(int m, int dim, std::uint64_t seed) {
  std::vector<float> x(static_cast<std::size_t>(m) * dim);
  Rng rng(seed);
  for (float& v : x) v = static_cast<float>(rng.uniform() * 2 - 1);
  return x;
}

class ConvStackModes
    : public ::testing::TestWithParam<ConvStack::Mode> {};

TEST_P(ConvStackModes, AgreesWithNaiveReference) {
  const auto snap = makeSnapshot({16, 32, 32, 1}, 3);
  const ConvStack stack(snap);
  const int m = 37;
  const auto input = randomInput(m, 16, 4);
  std::vector<float> reference(static_cast<std::size_t>(m));
  std::vector<float> output(static_cast<std::size_t>(m));
  stack.forward(ConvStack::Mode::kNaiveConv, input.data(), m, reference.data());
  stack.forward(GetParam(), input.data(), m, output.data());
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(output[static_cast<std::size_t>(i)],
                reference[static_cast<std::size_t>(i)], 1e-3f)
        << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(AllModes, ConvStackModes,
                         ::testing::Values(ConvStack::Mode::kMatmul,
                                           ConvStack::Mode::kMatmulSimd,
                                           ConvStack::Mode::kFusedLayer));

TEST(ConvStack, MatchesDoublePrecisionNetwork) {
  Network net({8, 16, 16, 1});
  Rng rng(7);
  net.initHe(rng);
  net.setInputTransform(std::vector<double>(8, 0.5),
                        std::vector<double>(8, 2.0));
  const ConvStack stack(net.foldedSnapshot());
  const int m = 9;
  const auto input = randomInput(m, 8, 8);
  std::vector<float> out(static_cast<std::size_t>(m));
  stack.forward(ConvStack::Mode::kFusedLayer, input.data(), m, out.data());
  for (int i = 0; i < m; ++i) {
    std::vector<double> f;
    for (int c = 0; c < 8; ++c)
      f.push_back(input[static_cast<std::size_t>(i) * 8 + c]);
    EXPECT_NEAR(out[static_cast<std::size_t>(i)], net.atomEnergy(f), 2e-3);
  }
}

TEST(ConvStack, FusedReducesTrafficVersusUnfused) {
  const auto snap = makeSnapshot({64, 128, 128, 128, 64, 1}, 5);
  const ConvStack stack(snap);
  const int m = 256;
  const auto input = randomInput(m, 64, 6);
  std::vector<float> out(static_cast<std::size_t>(m));
  Traffic naive, fused;
  stack.forward(ConvStack::Mode::kMatmul, input.data(), m, out.data(), &naive);
  stack.forward(ConvStack::Mode::kFusedLayer, input.data(), m, out.data(),
                &fused);
  EXPECT_LT(fused.mainBytes(), naive.mainBytes());
  EXPECT_GT(fused.arithmeticIntensity(), naive.arithmeticIntensity());
}

TEST(ConvStack, LayerTrafficMatchesClosedForm) {
  const auto snap = makeSnapshot({64, 128, 1}, 9);
  const ConvStack stack(snap);
  const int m = 100;
  const Traffic t = stack.layerTraffic(0, m, /*fused=*/false);
  const std::uint64_t matmulRead = (100ULL * 64 + 64ULL * 128) * 4;
  const std::uint64_t matmulWrite = 100ULL * 128 * 4;
  // + bias pass + relu pass (each read+write m*out floats).
  EXPECT_EQ(t.mainReadBytes, matmulRead + 2 * matmulWrite);
  EXPECT_EQ(t.mainWriteBytes, 3 * matmulWrite);
  EXPECT_EQ(t.flops, 2ULL * 100 * 64 * 128 + 2ULL * 100 * 128);
}

TEST(ConvStack, FusedLayerTrafficHasNoElementwisePasses) {
  const auto snap = makeSnapshot({64, 128, 1}, 9);
  const ConvStack stack(snap);
  const Traffic fused = stack.layerTraffic(0, 100, /*fused=*/true);
  EXPECT_EQ(fused.mainReadBytes, (100ULL * 64 + 64ULL * 128) * 4);
  EXPECT_EQ(fused.mainWriteBytes, 100ULL * 128 * 4);
}

TEST(ConvStack, PaperShapeIntensityIsMemoryBound) {
  // N,H,W = 32,16,16 with the production channels: each unfused layer
  // sits far left of the 43.63 F/B knee (paper Fig. 9 upper panel).
  const auto snap = makeSnapshot({64, 128, 128, 128, 64, 1}, 10);
  const ConvStack stack(snap);
  const int m = 32 * 16 * 16;
  for (int layer = 0; layer < stack.numLayers(); ++layer) {
    const Traffic t = stack.layerTraffic(layer, m, /*fused=*/false);
    EXPECT_LT(t.arithmeticIntensity(), 43.63);
  }
}

struct ShapeCase {
  std::vector<int> channels;
  int m;
};

class ConvStackShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ConvStackShapeSweep, AllModesAgree) {
  const auto& c = GetParam();
  const auto snap = makeSnapshot(c.channels, 31);
  const ConvStack stack(snap);
  const auto input = randomInput(c.m, c.channels.front(), 32);
  const std::size_t outSize =
      static_cast<std::size_t>(c.m) * static_cast<std::size_t>(c.channels.back());
  std::vector<float> reference(outSize), out(outSize);
  stack.forward(ConvStack::Mode::kNaiveConv, input.data(), c.m,
                reference.data());
  for (auto mode : {ConvStack::Mode::kMatmul, ConvStack::Mode::kMatmulSimd,
                    ConvStack::Mode::kFusedLayer}) {
    stack.forward(mode, input.data(), c.m, out.data());
    for (std::size_t i = 0; i < outSize; ++i)
      ASSERT_NEAR(out[i], reference[i],
                  1e-3f * std::max(1.0f, std::abs(reference[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvStackShapeSweep,
    ::testing::Values(ShapeCase{{1, 1}, 5}, ShapeCase{{4, 4, 4}, 17},
                      ShapeCase{{64, 128, 128, 128, 64, 1}, 64},
                      ShapeCase{{3, 100, 1}, 1},
                      ShapeCase{{16, 8, 4, 2, 1}, 33}));

TEST(ConvStack, ForwardTrafficAccumulates) {
  const auto snap = makeSnapshot({8, 16, 1}, 11);
  const ConvStack stack(snap);
  const int m = 10;
  const auto input = randomInput(m, 8, 12);
  std::vector<float> out(static_cast<std::size_t>(m));
  Traffic once, twice;
  stack.forward(ConvStack::Mode::kMatmul, input.data(), m, out.data(), &once);
  stack.forward(ConvStack::Mode::kMatmul, input.data(), m, out.data(), &twice);
  stack.forward(ConvStack::Mode::kMatmul, input.data(), m, out.data(), &twice);
  EXPECT_EQ(twice.mainBytes(), 2 * once.mainBytes());
  EXPECT_EQ(twice.flops, 2 * once.flops);
}

}  // namespace
}  // namespace tkmc
