// Integration test for the paper's Fig. 8 validation: the TensorKMC fast
// path (triple-encoding tables + vacancy cache) must produce a trajectory
// bit-identical to the direct OpenKMC-style evaluation that walks the
// global lattice array for every energy.

#include <gtest/gtest.h>

#include "analysis/cluster_analysis.hpp"
#include "common/rng.hpp"
#include "kmc/direct_energy_model.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "kmc/serial_engine.hpp"
#include "tabulation/feature_table.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

Network makeNetwork(std::uint64_t seed) {
  Network network({64, 16, 16, 1});
  Rng rng(seed);
  network.initHe(rng);
  return network;
}

LatticeState makeState(std::uint64_t seed) {
  LatticeState state(BccLattice(14, 14, 14, 2.87));
  Rng rng(seed);
  state.randomAlloy(0.1, 3, rng);
  return state;
}

TEST(Fig8Equivalence, EnergyBackendsAgreeBitwise) {
  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  const Network network = makeNetwork(5);
  NnpEnergyModel fast(cet, net, table, network);
  DirectEnergyModel direct(2.87, kCutoff, network);

  LatticeState state = makeState(31);
  for (const Vec3i& vac : state.vacancies()) {
    const Vec3i center = state.lattice().wrap(vac);
    const auto a = fast.stateEnergies(state, center, kNumJumpDirections);
    const auto b = direct.stateEnergies(state, center, kNumJumpDirections);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s)
      ASSERT_EQ(a[s], b[s]) << "state " << s;  // bitwise, not approximate
  }
}

TEST(Fig8Equivalence, TrajectoriesAreBitIdentical) {
  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  const Network network = makeNetwork(6);

  LatticeState fastState = makeState(32);
  LatticeState directState = makeState(32);
  NnpEnergyModel fastModel(cet, net, table, network);
  DirectEnergyModel directModel(2.87, kCutoff, network);

  KmcConfig fastCfg;
  fastCfg.seed = 77;
  fastCfg.tEnd = 1e300;
  KmcConfig directCfg = fastCfg;
  directCfg.useVacancyCache = false;  // the direct backend has no VET path

  SerialEngine fastEngine(fastState, fastModel, cet, fastCfg);
  SerialEngine directEngine(directState, directModel, cet, directCfg);

  for (int i = 0; i < 120; ++i) {
    const auto rf = fastEngine.step();
    const auto rd = directEngine.step();
    ASSERT_TRUE(rf.advanced);
    ASSERT_EQ(rf.from, rd.from) << "step " << i;
    ASSERT_EQ(rf.to, rd.to) << "step " << i;
    ASSERT_EQ(rf.dt, rd.dt) << "step " << i;  // bitwise
  }
  EXPECT_TRUE(fastState == directState);
  EXPECT_EQ(fastState.contentHash(), directState.contentHash());
}

TEST(Fig8Equivalence, IsolatedCuCountsTrackExactly) {
  // The Fig. 8 observable: number of isolated Cu atoms over the run.
  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const FeatureTable table(net.distances(), standardPqSets());
  const Network network = makeNetwork(7);

  LatticeState fastState = makeState(33);
  LatticeState directState = makeState(33);
  NnpEnergyModel fastModel(cet, net, table, network);
  DirectEnergyModel directModel(2.87, kCutoff, network);

  KmcConfig fastCfg;
  fastCfg.seed = 88;
  fastCfg.tEnd = 1e300;
  KmcConfig directCfg = fastCfg;
  directCfg.useVacancyCache = false;

  SerialEngine fastEngine(fastState, fastModel, cet, fastCfg);
  SerialEngine directEngine(directState, directModel, cet, directCfg);

  for (int block = 0; block < 6; ++block) {
    for (int i = 0; i < 20; ++i) {
      fastEngine.step();
      directEngine.step();
    }
    const auto fastStats = analyzeClusters(fastState, Species::kCu);
    const auto directStats = analyzeClusters(directState, Species::kCu);
    ASSERT_EQ(fastStats.isolatedCount, directStats.isolatedCount);
    ASSERT_EQ(fastStats.sizes, directStats.sizes);
  }
}

}  // namespace
}  // namespace tkmc
