#include "parallel/ghost_exchange.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tkmc {
namespace {

// Builds one subdomain per rank, loads a random global state into the
// owned regions only (ghosts deliberately wrong), exchanges, and checks
// every ghost site against the global state.
TEST(GhostExchange, FillsAllGhostsIncludingCornersAndEdges) {
  const BccLattice lat(12, 12, 12, 2.87);
  LatticeState global(lat);
  Rng rng(5);
  global.randomAlloy(0.3, 7, rng);

  const Decomposition decomp({12, 12, 12}, {2, 2, 2});
  SimComm comm(decomp.rankCount());
  GhostExchange exchange(decomp, comm);

  std::vector<Subdomain> domains;
  for (int r = 0; r < decomp.rankCount(); ++r) {
    domains.emplace_back(lat, decomp.originCells(r), decomp.extentCells(), 2);
    Subdomain& sd = domains.back();
    // Load owned data only; poison the ghosts.
    sd.loadFrom(global);
    const Vec3i e = sd.extentCells();
    const int g = sd.ghostCells();
    for (int cz = -g; cz < e.z + g; ++cz)
      for (int cy = -g; cy < e.y + g; ++cy)
        for (int cx = -g; cx < e.x + g; ++cx) {
          const bool ghost = cx < 0 || cx >= e.x || cy < 0 || cy >= e.y ||
                             cz < 0 || cz >= e.z;
          if (!ghost) continue;
          const Vec3i o = decomp.originCells(r);
          for (int sub = 0; sub < 2; ++sub)
            sd.set({2 * (o.x + cx) + sub, 2 * (o.y + cy) + sub,
                    2 * (o.z + cz) + sub},
                   Species::kCu);
        }
  }

  exchange.exchangeAll(domains);

  for (int r = 0; r < decomp.rankCount(); ++r) {
    const Subdomain& sd = domains[static_cast<std::size_t>(r)];
    const Vec3i o = decomp.originCells(r);
    const Vec3i e = sd.extentCells();
    const int g = sd.ghostCells();
    for (int cz = -g; cz < e.z + g; ++cz)
      for (int cy = -g; cy < e.y + g; ++cy)
        for (int cx = -g; cx < e.x + g; ++cx)
          for (int sub = 0; sub < 2; ++sub) {
            const Vec3i p{2 * (o.x + cx) + sub, 2 * (o.y + cy) + sub,
                          2 * (o.z + cz) + sub};
            ASSERT_EQ(sd.at(p), global.speciesAt(p))
                << "rank " << r << " cell (" << cx << "," << cy << "," << cz
                << ") sub " << sub;
          }
  }
}

TEST(GhostExchange, PropagatesOwnedUpdatesToNeighbors) {
  const BccLattice lat(12, 12, 12, 2.87);
  LatticeState global(lat);
  const Decomposition decomp({12, 12, 12}, {2, 2, 2});
  SimComm comm(decomp.rankCount());
  GhostExchange exchange(decomp, comm);
  std::vector<Subdomain> domains;
  for (int r = 0; r < decomp.rankCount(); ++r) {
    domains.emplace_back(lat, decomp.originCells(r), decomp.extentCells(), 2);
    domains.back().loadFrom(global);
  }
  // Rank 0 changes a site near its upper-x boundary.
  const Vec3i site{11, 1, 1};  // cell (5,0,0), owned by rank 0
  ASSERT_EQ(decomp.ownerOfSite(site), 0);
  domains[0].set(site, Species::kCu);
  exchange.exchangeAll(domains);
  // Rank 1 (x-neighbour) must now see it in its ghost shell.
  ASSERT_TRUE(domains[1].covers(site));
  EXPECT_EQ(domains[1].at(site), Species::kCu);
}

TEST(GhostExchange, MessageCountIsSixPerRankPerRound) {
  const BccLattice lat(12, 12, 12, 2.87);
  LatticeState global(lat);
  const Decomposition decomp({12, 12, 12}, {2, 2, 2});
  SimComm comm(decomp.rankCount());
  GhostExchange exchange(decomp, comm);
  std::vector<Subdomain> domains;
  for (int r = 0; r < decomp.rankCount(); ++r) {
    domains.emplace_back(lat, decomp.originCells(r), decomp.extentCells(), 2);
    domains.back().loadFrom(global);
  }
  comm.resetStats();
  exchange.exchangeAll(domains);
  EXPECT_EQ(comm.totalMessagesSent(),
            static_cast<std::uint64_t>(6 * decomp.rankCount()));
  EXPECT_GT(comm.totalBytesSent(), 0u);
}

// A single-rank axis carries no ghost shell and exchanges no slabs:
// flat grids are legal (they arise from shrink recovery) and ghosts on
// the remaining decomposed axes still come out exact.
TEST(GhostExchange, SingleRankAxisIsSkipped) {
  const BccLattice lat(12, 12, 12, 2.87);
  LatticeState global(lat);
  Rng rng(7);
  global.randomAlloy(0.3, 7, rng);
  const Decomposition decomp({12, 12, 12}, {1, 2, 2});
  SimComm comm(decomp.rankCount());
  GhostExchange exchange(decomp, comm);
  std::vector<Subdomain> domains;
  for (int r = 0; r < decomp.rankCount(); ++r) {
    domains.emplace_back(lat, decomp.originCells(r), decomp.extentCells(),
                         Vec3i{0, 2, 2});  // no ghosts along the flat axis
    domains.back().loadFrom(global);
  }
  comm.resetStats();
  exchange.exchangeAll(domains);
  // Two slabs per decomposed axis per rank; nothing on the x axis.
  EXPECT_EQ(comm.totalMessagesSent(),
            static_cast<std::uint64_t>(4 * decomp.rankCount()));
  for (int r = 0; r < decomp.rankCount(); ++r) {
    const Subdomain& sd = domains[static_cast<std::size_t>(r)];
    const Vec3i o = decomp.originCells(r);
    const Vec3i e = sd.extentCells();
    const Vec3i g = sd.ghostCellsVec();
    for (int cz = -g.z; cz < e.z + g.z; ++cz)
      for (int cy = -g.y; cy < e.y + g.y; ++cy)
        for (int cx = -g.x; cx < e.x + g.x; ++cx)
          for (int sub = 0; sub < 2; ++sub) {
            const Vec3i p{2 * (o.x + cx) + sub, 2 * (o.y + cy) + sub,
                          2 * (o.z + cz) + sub};
            ASSERT_EQ(sd.at(p), global.speciesAt(lat.wrap(p)))
                << "rank " << r << " cell (" << cx << "," << cy << "," << cz
                << ") sub " << sub;
          }
  }
}

}  // namespace
}  // namespace tkmc
