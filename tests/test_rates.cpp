#include "kmc/rate_calculator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace tkmc {
namespace {

Vet uniformVet(Species fill, int n = 64) {
  Vet vet(n);
  for (int i = 0; i < n; ++i) vet.set(i, fill);
  vet.set(0, Species::kVacancy);
  return vet;
}

TEST(RateCalculator, FlatLandscapeGivesReferenceBarrierRate) {
  const Vet vet = uniformVet(Species::kFe);
  std::vector<double> energies(9, -100.0);  // E_f == E_i for all jumps
  const JumpRates jr = computeRates(vet, energies, 573.0);
  const double expected =
      kAttemptFrequency * std::exp(-kActivationFe / (kBoltzmannEv * 573.0));
  for (double r : jr.rate) EXPECT_NEAR(r, expected, expected * 1e-12);
  EXPECT_NEAR(jr.total, 8 * expected, expected * 1e-9);
}

TEST(RateCalculator, CopperMigratesFasterThanIronOnFlatLandscape) {
  Vet vet = uniformVet(Species::kFe);
  vet.set(Cet::jumpTargetId(3), Species::kCu);
  std::vector<double> energies(9, 0.0);
  const JumpRates jr = computeRates(vet, energies, 573.0);
  // Cu has the lower reference activation (0.56 vs 0.65 eV).
  for (int k = 0; k < 8; ++k) {
    if (k == 3) continue;
    EXPECT_GT(jr.rate[3], jr.rate[static_cast<std::size_t>(k)]);
  }
}

TEST(RateCalculator, EnergyDifferenceEntersWithHalfWeight) {
  const Vet vet = uniformVet(Species::kFe);
  std::vector<double> energies(9, 0.0);
  energies[1] = 0.2;   // uphill jump: dE = +0.2
  energies[2] = -0.2;  // downhill jump
  const JumpRates jr = computeRates(vet, energies, 573.0);
  const double kt = kBoltzmannEv * 573.0;
  EXPECT_NEAR(jr.rate[0],
              kAttemptFrequency * std::exp(-(kActivationFe + 0.1) / kt),
              jr.rate[0] * 1e-9);
  EXPECT_NEAR(jr.rate[1],
              kAttemptFrequency * std::exp(-(kActivationFe - 0.1) / kt),
              jr.rate[1] * 1e-9);
  EXPECT_GT(jr.rate[1], jr.rate[0]);
}

TEST(RateCalculator, BarrierClampedAtZero) {
  const Vet vet = uniformVet(Species::kFe);
  std::vector<double> energies(9, 0.0);
  energies[1] = -10.0;  // would drive E_a far below zero
  const JumpRates jr = computeRates(vet, energies, 573.0);
  EXPECT_NEAR(jr.rate[0], kAttemptFrequency, 1e-3);
  EXPECT_LE(jr.rate[0], kAttemptFrequency);
}

TEST(RateCalculator, JumpIntoVacancyIsForbidden) {
  Vet vet = uniformVet(Species::kFe);
  vet.set(Cet::jumpTargetId(5), Species::kVacancy);
  std::vector<double> energies(9, 0.0);
  const JumpRates jr = computeRates(vet, energies, 573.0);
  EXPECT_EQ(jr.rate[5], 0.0);
  EXPECT_GT(jr.rate[0], 0.0);
}

TEST(RateCalculator, HigherTemperatureRaisesRates) {
  const Vet vet = uniformVet(Species::kFe);
  std::vector<double> energies(9, 0.0);
  const JumpRates cold = computeRates(vet, energies, 300.0);
  const JumpRates hot = computeRates(vet, energies, 900.0);
  EXPECT_GT(hot.total, cold.total * 100.0);
}

TEST(RateCalculator, RejectsBadInputs) {
  const Vet vet = uniformVet(Species::kFe);
  std::vector<double> tooFew(5, 0.0);
  EXPECT_THROW(computeRates(vet, tooFew, 573.0), Error);
  std::vector<double> ok(9, 0.0);
  EXPECT_THROW(computeRates(vet, ok, -1.0), Error);
}

TEST(ResidenceTime, MatchesEquationThree) {
  EXPECT_DOUBLE_EQ(residenceTime(1.0, 2.0), 0.0);
  EXPECT_NEAR(residenceTime(std::exp(-1.0), 4.0), 0.25, 1e-12);
  EXPECT_GT(residenceTime(0.01, 1.0), residenceTime(0.5, 1.0));
}

TEST(ResidenceTime, RejectsBadDraws) {
  EXPECT_THROW(residenceTime(0.0, 1.0), Error);
  EXPECT_THROW(residenceTime(1.5, 1.0), Error);
  EXPECT_THROW(residenceTime(0.5, 0.0), Error);
}

TEST(ResidenceTime, MeanMatchesInversePropensity) {
  Rng rng(71);
  const double propensity = 5.0e8;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    sum += residenceTime(rng.uniformOpenLeft(), propensity);
  EXPECT_NEAR(sum / n, 1.0 / propensity, 0.01 / propensity);
}

}  // namespace
}  // namespace tkmc
