#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/eam_energy_model.hpp"
#include "parallel/coordinated_checkpoint.hpp"
#include "parallel/parallel_engine.hpp"
#include "parallel/remote_store.hpp"

namespace tkmc {
namespace {

namespace fs = std::filesystem;

constexpr double kCutoff = 4.0;

struct ParallelWorld {
  ParallelWorld(std::uint64_t seed, int cells = 16, int vacancies = 6)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(cells, cells, cells, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.12, vacancies, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

std::string tempDir(const std::string& name) {
  const auto dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Fast retry policy for tests: three attempts, sub-millisecond waits.
RetryPolicy testRetry(int attempts = 3) {
  RetryPolicy p;
  p.maxAttempts = attempts;
  p.baseDelayMs = 0.01;
  p.multiplier = 2.0;
  p.maxDelayMs = 0.05;
  p.jitterFrac = 0.25;
  return p;
}

ShardStreamer::Config streamerConfig(int attempts = 3) {
  ShardStreamer::Config cfg;
  cfg.retry = testRetry(attempts);
  return cfg;
}

// --- Tiny hand-built epochs (same shapes as test_delta_checkpoint) -----

ShardRecord tinyFullShard(std::vector<std::uint8_t> species) {
  ShardRecord s;
  s.rank = 0;
  s.originCells = {0, 0, 0};
  s.extentCells = {1, 1, 1};
  s.rngState = {1, 2, 3, 4};
  s.vacancyOrder = {{0, 0, 0}};
  s.species = std::move(species);
  return s;
}

EpochManifest tinyManifest(std::uint64_t epoch) {
  EpochManifest m;
  m.epoch = epoch;
  m.rankGrid = {1, 1, 1};
  m.globalCells = {1, 1, 1};
  m.latticeConstant = 2.87;
  m.tStop = 1e-8;
  m.seed = 7;
  return m;
}

std::uint32_t commitTinyFull(CheckpointStore& store, std::uint64_t epoch,
                             std::vector<std::uint8_t> species) {
  store.beginEpoch(epoch);
  EpochManifest m = tinyManifest(epoch);
  m.shards.push_back(store.stageShard(epoch, tinyFullShard(std::move(species))));
  return store.commitEpoch(m);
}

std::uint32_t commitTinyDelta(CheckpointStore& store, std::uint64_t epoch,
                              std::uint64_t base, std::uint32_t baseCrc,
                              std::vector<std::uint8_t> pageSpecies) {
  store.beginEpoch(epoch);
  ShardRecord d = tinyFullShard({});
  d.delta = true;
  d.baseEpoch = base;
  d.rngState = {epoch, epoch + 1, epoch + 2, epoch + 3};
  ShardRecord::DirtyPage page;
  page.index = 0;
  page.species = std::move(pageSpecies);
  d.dirtyPages.push_back(std::move(page));
  EpochManifest m = tinyManifest(epoch);
  m.baseEpoch = base;
  m.baseCrc = baseCrc;
  m.shards.push_back(store.stageShard(epoch, d));
  return store.commitEpoch(m);
}

/// Streams every committed epoch of `store` into `remote` and waits for
/// the mirror to drain.
void streamAll(const CheckpointStore& store,
               std::shared_ptr<RemoteShardStore> remote,
               ShardStreamer::Config cfg = streamerConfig()) {
  ShardStreamer streamer(store.dir(), std::move(remote), cfg);
  for (const std::uint64_t epoch : store.epochs()) streamer.enqueue(epoch);
  ASSERT_TRUE(streamer.drain(30000.0));
  ASSERT_EQ(streamer.gaveUp(), 0u);
}

// --- Placement map format ----------------------------------------------

TEST(Placement, RoundTripsThroughEncodeAndParse) {
  PlacementMap map;
  map.epoch = 7;
  map.rows.push_back({"rank_0.tkc", 0xdeadbeef, 1234, "/mirror/epoch_7"});
  map.rows.push_back({"manifest.tkm", 0x00000001, 88, "/mirror/epoch_7"});
  const std::string encoded = encodePlacement(map);

  const PlacementMap parsed = parsePlacement(encoded, "test");
  EXPECT_EQ(parsed.epoch, 7u);
  ASSERT_EQ(parsed.rows.size(), 2u);
  EXPECT_EQ(parsed.rows[0].file, "rank_0.tkc");
  EXPECT_EQ(parsed.rows[0].crc, 0xdeadbeefu);
  EXPECT_EQ(parsed.rows[0].bytes, 1234u);
  EXPECT_EQ(parsed.rows[0].location, "/mirror/epoch_7");
  EXPECT_EQ(parsed.rows[1].file, "manifest.tkm");
}

TEST(Placement, TornOrTamperedMapsAreRejected) {
  PlacementMap map;
  map.epoch = 3;
  map.rows.push_back({"rank_0.tkc", 1, 10, "loc"});
  const std::string encoded = encodePlacement(map);

  // Truncation (a half-streamed placement map) loses the footer.
  EXPECT_THROW((void)parsePlacement(encoded.substr(0, encoded.size() / 2),
                                    "torn"),
               IoError);
  // A flipped byte fails the CRC.
  std::string tampered = encoded;
  tampered[tampered.size() / 3] ^= 0x01;
  EXPECT_THROW((void)parsePlacement(tampered, "rot"), IoError);
  // A row trying to escape the epoch directory is rejected even when
  // the CRC is formally correct.
  PlacementMap evil;
  evil.epoch = 3;
  evil.rows.push_back({"nested/escape", 1, 10, "loc"});
  EXPECT_THROW((void)parsePlacement(encodePlacement(evil), "escape"), IoError);
}

// --- DirRemoteStore ----------------------------------------------------

TEST(DirStore, PutGetListStatRoundTrip) {
  DirRemoteStore remote(tempDir("tkmc_remote_roundtrip"));
  remote.put("epoch_3", "rank_0.tkc", "hello shard");
  remote.put("epoch_3", "manifest.tkm", "hello manifest");

  EXPECT_EQ(remote.get("epoch_3", "rank_0.tkc"), "hello shard");
  EXPECT_EQ(remote.listEpochs(), (std::vector<std::string>{"epoch_3"}));
  std::vector<std::string> files = remote.listFiles("epoch_3");
  std::sort(files.begin(), files.end());
  EXPECT_EQ(files,
            (std::vector<std::string>{"manifest.tkm", "rank_0.tkc"}));
  ASSERT_TRUE(remote.stat("epoch_3", "rank_0.tkc"));
  EXPECT_EQ(remote.stat("epoch_3", "rank_0.tkc")->bytes, 11u);
  EXPECT_FALSE(remote.stat("epoch_3", "missing"));
  EXPECT_THROW((void)remote.get("epoch_3", "missing"), IoError);

  // Overwrites replace in place: no .tmp or .bak debris in the mirror.
  remote.put("epoch_3", "rank_0.tkc", "rewritten");
  EXPECT_EQ(remote.get("epoch_3", "rank_0.tkc"), "rewritten");
  EXPECT_EQ(remote.listFiles("epoch_3").size(), 2u);
}

// --- ShardStreamer -----------------------------------------------------

TEST(Streamer, MirrorsCommittedEpochsAndWritesPlacementMaps) {
  CheckpointStore store(tempDir("tkmc_stream_src"));
  const std::uint32_t crc0 = commitTinyFull(store, 0, {0, 1});
  commitTinyDelta(store, 1, 0, crc0, {1, 1});
  const std::string remoteDir = tempDir("tkmc_stream_dst");
  auto remote = std::make_shared<DirRemoteStore>(remoteDir);
  streamAll(store, remote);

  for (const std::uint64_t epoch : {0u, 1u}) {
    const std::string epochDir = "epoch_" + std::to_string(epoch);
    const PlacementMap placement = parsePlacement(
        remote->get(epochDir, kPlacementFile), epochDir);
    EXPECT_EQ(placement.epoch, epoch);
    ASSERT_EQ(placement.rows.size(), 2u);  // one shard + the manifest
    EXPECT_EQ(placement.rows.back().file, "manifest.tkm");
    for (const PlacementMap::Row& row : placement.rows) {
      const std::string remoteCopy = remote->get(epochDir, row.file);
      // Byte-identical mirror, and the placement pins really match.
      EXPECT_EQ(remoteCopy,
                slurp(store.epochPath(epoch) + "/" + row.file));
      EXPECT_EQ(remoteCopy.size(), row.bytes);
      EXPECT_EQ(crc32(remoteCopy.data(), remoteCopy.size()), row.crc);
    }
  }
}

TEST(Streamer, InjectedPutFailuresRetryWithBackoffThenSucceed) {
  CheckpointStore store(tempDir("tkmc_stream_retry_src"));
  commitTinyFull(store, 0, {0, 1});
  auto remote =
      std::make_shared<DirRemoteStore>(tempDir("tkmc_stream_retry_dst"));

  FaultInjector inj(5);
  inj.armSchedule("remote.put_fail", {1, 2});  // first object fails twice
  FaultScope scope(inj);
  ShardStreamer streamer(store.dir(), remote, streamerConfig(5));
  streamer.enqueue(0);
  ASSERT_TRUE(streamer.drain(30000.0));

  EXPECT_EQ(streamer.retries(), 2u);
  EXPECT_EQ(streamer.gaveUp(), 0u);
  EXPECT_EQ(streamer.epochsStreamed(), 1u);
  EXPECT_NO_THROW(
      (void)parsePlacement(remote->get("epoch_0", kPlacementFile), "epoch_0"));
}

TEST(Streamer, DeadRemoteGivesUpBoundedlyAndLeavesLocalStoreIntact) {
  telemetry::resetAll();
  telemetry::ScopedEnable enable;
  CheckpointStore store(tempDir("tkmc_stream_dead_src"));
  commitTinyFull(store, 0, {0, 1});
  commitTinyFull(store, 1, {1, 0});
  auto remote =
      std::make_shared<DirRemoteStore>(tempDir("tkmc_stream_dead_dst"));

  FaultInjector inj(6);
  inj.armProbability("remote.put_fail", 1.0);
  FaultScope scope(inj);
  {
    ShardStreamer streamer(store.dir(), remote, streamerConfig(3));
    streamer.enqueue(0);
    streamer.enqueue(1);
    ASSERT_TRUE(streamer.drain(30000.0));
    // Every epoch's first object burns its 3 attempts, then the epoch is
    // abandoned — the queue always drains, so commit throttling can
    // never wedge on a dead remote.
    EXPECT_EQ(streamer.gaveUp(), 2u);
    EXPECT_EQ(streamer.epochsStreamed(), 0u);
    EXPECT_EQ(streamer.retries(), 4u);  // 2 retries per abandoned epoch
    EXPECT_EQ(streamer.waitForLag(0, 5000.0), 0);
  }
  // The local store is untouched and the remote holds no commit marker.
  EXPECT_TRUE(store.chainValid(0));
  EXPECT_TRUE(store.chainValid(1));
  EXPECT_FALSE(remote->stat("epoch_0", kPlacementFile));
  EXPECT_FALSE(remote->stat("epoch_1", kPlacementFile));
  EXPECT_EQ(telemetry::metrics().counter("remote.gave_up").value(), 2u);
  EXPECT_EQ(telemetry::metrics().counter("remote.retries").value(), 4u);
  telemetry::resetAll();
}

// --- Recovery through the remote copy ----------------------------------

TEST(RemoteRecovery, HealsAMissingLocalEpochFromTheRemoteCopy) {
  const std::string dir = tempDir("tkmc_heal_src");
  auto remote = std::make_shared<DirRemoteStore>(tempDir("tkmc_heal_dst"));
  {
    CheckpointStore store(dir);
    commitTinyFull(store, 0, {0, 1});
    commitTinyFull(store, 1, {2, 2});
    streamAll(store, remote);
  }
  // Node loss: the newest epoch's local directory dies with its node.
  const std::string epoch1 = dir + "/epoch_1";
  const std::string epoch1Manifest = slurp(epoch1 + "/manifest.tkm");
  fs::remove_all(epoch1);

  CheckpointStore store(dir);
  store.attachRemote(remote);
  ASSERT_EQ(store.newestCompleteEpoch(), std::uint64_t{1});
  EXPECT_EQ(store.remoteHeals(), 1u);
  // The healed directory is byte-identical to what was lost.
  EXPECT_EQ(slurp(epoch1 + "/manifest.tkm"), epoch1Manifest);
  const CheckpointStore::ResolvedEpoch resolved = store.loadNewestResolvable();
  EXPECT_EQ(resolved.epoch, 1u);
  ASSERT_EQ(resolved.shards.size(), 1u);
  EXPECT_EQ(resolved.shards[0].species, (std::vector<std::uint8_t>{2, 2}));
}

TEST(RemoteRecovery, TornRemoteCopyIsRefusedAndFallsBackAnEpoch) {
  const std::string dir = tempDir("tkmc_torn_src");
  const std::string remoteDir = tempDir("tkmc_torn_dst");
  auto remote = std::make_shared<DirRemoteStore>(remoteDir);
  {
    CheckpointStore store(dir);
    commitTinyFull(store, 0, {0, 1});
    commitTinyFull(store, 1, {2, 2});
    streamAll(store, remote);
  }
  fs::remove_all(dir + "/epoch_1");
  // Half-stream the remote copy of epoch 1: its shard is torn, so the
  // placement CRC pin no longer matches.
  fs::resize_file(remoteDir + "/epoch_1/rank_0.tkc", 10);

  CheckpointStore store(dir);
  store.attachRemote(remote);
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{0});
  const CheckpointStore::ResolvedEpoch resolved = store.loadNewestResolvable();
  EXPECT_EQ(resolved.epoch, 0u);
  EXPECT_EQ(resolved.shards[0].species, (std::vector<std::uint8_t>{0, 1}));
  // The refused heal never replaced anything local.
  EXPECT_FALSE(fs::exists(dir + "/epoch_1"));
}

TEST(RemoteRecovery, HalfStreamedEpochWithoutPlacementMapIsIgnored) {
  const std::string dir = tempDir("tkmc_inflight_src");
  auto remote = std::make_shared<DirRemoteStore>(tempDir("tkmc_inflight_dst"));
  {
    CheckpointStore store(dir);
    commitTinyFull(store, 0, {0, 1});
    streamAll(store, remote);
  }
  // An epoch whose copy never finished: objects but no placement map.
  remote->put("epoch_5", "rank_0.tkc", "half streamed");
  fs::remove_all(dir + "/epoch_0");

  CheckpointStore store(dir);
  store.attachRemote(remote);
  // Epoch 5 is a candidate (remote listing) but refuses to heal; the
  // walk falls through to the fully streamed epoch 0.
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{0});
  EXPECT_EQ(store.loadNewestResolvable().epoch, 0u);
}

TEST(RemoteRecovery, TruncatedDeltaChainFailsOverToAnOlderEpoch) {
  // Satellite regression: a delta epoch whose base directory was GC'd
  // (hand-truncated here) must fail over to the next older complete
  // epoch instead of surfacing a terminal IoError.
  CheckpointStore store(tempDir("tkmc_truncated_chain"));
  const std::uint32_t crc0 = commitTinyFull(store, 0, {0, 1});
  const std::uint32_t crc1 = commitTinyDelta(store, 1, 0, crc0, {1, 1});
  commitTinyDelta(store, 2, 1, crc1, {2, 0});
  ASSERT_EQ(store.newestCompleteEpoch(), std::uint64_t{2});

  fs::remove_all(store.epochPath(1));  // the GC'd base link
  const CheckpointStore::ResolvedEpoch resolved = store.loadNewestResolvable();
  EXPECT_EQ(resolved.epoch, 0u);
  EXPECT_EQ(resolved.shards[0].species, (std::vector<std::uint8_t>{0, 1}));

  // Only when no epoch resolves at all does recovery raise.
  fs::remove_all(store.epochPath(0));
  EXPECT_THROW((void)store.loadNewestResolvable(), IoError);
}

// --- Engine end to end: node loss, heal, bit-exact resume ---------------

ParallelConfig remoteConfig(std::uint64_t seed, const std::string& dir,
                            const std::string& remoteDir) {
  ParallelConfig cfg;
  cfg.seed = seed;
  cfg.tStop = 5e-8;
  cfg.rankGrid = {2, 2, 1};
  cfg.checkpointDir = dir;
  cfg.checkpointCadence = 1;
  cfg.heartbeatIntervalMs = 5.0;
  cfg.heartbeatTimeoutMs = 20.0;
  cfg.remoteDir = remoteDir;
  cfg.remoteRetries = 3;
  return cfg;
}

TEST(RemoteEngine, NodeLossResumeFromRemoteMatchesIntactLocalResume) {
  const std::string dirA = tempDir("tkmc_nodeloss_a");
  const std::string dirB = tempDir("tkmc_nodeloss_b");
  const std::string remoteDir = tempDir("tkmc_nodeloss_remote");
  std::uint64_t cyclesRun = 0;
  {
    ParallelWorld w(71);
    EamEnergyModel model(w.cet, w.net, w.eam);
    ParallelEngine engine(w.state, model, w.cet,
                          remoteConfig(81, dirA, remoteDir));
    for (int c = 0; c < 4; ++c) engine.runCycle();
    cyclesRun = engine.cycles();
    ASSERT_NE(engine.shardStreamer(), nullptr);
    ASSERT_TRUE(engine.shardStreamer()->drain(30000.0));
    ASSERT_EQ(engine.shardStreamer()->gaveUp(), 0u);
  }
  // Twin B: an intact copy of the local checkpoint tree, taken before
  // the damage. Then the node loss: A's newest epoch dir is deleted.
  fs::copy(dirA, dirB, fs::copy_options::recursive);
  CheckpointStore probeB(dirB);
  const std::uint64_t newest = *probeB.newestCompleteEpoch();
  fs::remove_all(dirA + "/epoch_" + std::to_string(newest));

  // Resume A through the remote heal; resume B from its intact tree.
  ParallelWorld wa(71), wb(71);
  EamEnergyModel ma(wa.cet, wa.net, wa.eam), mb(wb.cet, wb.net, wb.eam);
  ParallelConfig cfg = remoteConfig(81, "", "");
  cfg.checkpointDir.clear();
  cfg.remoteDir.clear();
  cfg.heartbeatTimeoutMs = 0.0;

  CheckpointStore storeA(dirA);
  storeA.attachRemote(std::make_shared<DirRemoteStore>(remoteDir));
  ASSERT_EQ(storeA.newestCompleteEpoch(), newest);
  EXPECT_GE(storeA.remoteHeals(), 1u);
  ParallelEngine resumedA(ma, wa.cet, cfg, storeA, newest);
  ParallelEngine resumedB(mb, wb.cet, cfg, probeB, newest);

  for (std::uint64_t c = cyclesRun; c < cyclesRun + 3; ++c) {
    resumedA.runCycle();
    resumedB.runCycle();
  }
  // Pulling the lost shard from the remote copy is bit-identical to a
  // resume that never lost it.
  EXPECT_EQ(resumedA.totalEvents(), resumedB.totalEvents());
  EXPECT_EQ(resumedA.discardedEvents(), resumedB.discardedEvents());
  EXPECT_DOUBLE_EQ(resumedA.time(), resumedB.time());
  EXPECT_TRUE(resumedA.assembleGlobalState() == resumedB.assembleGlobalState());
}

TEST(RemoteEngine, InjectedStreamFailuresNeverCorruptOrBlockLocalCommits) {
  const std::string dir = tempDir("tkmc_chaosput_local");
  const std::string remoteDir = tempDir("tkmc_chaosput_remote");
  ParallelWorld w(72);
  EamEnergyModel model(w.cet, w.net, w.eam);
  FaultInjector inj(9);
  inj.armProbability("remote.put_fail", 0.3);
  inj.armProbability("remote.torn_copy", 0.2);
  FaultScope scope(inj);
  ParallelConfig cfg = remoteConfig(82, dir, remoteDir);
  ParallelEngine engine(w.state, model, w.cet, cfg);
  for (int c = 0; c < 4; ++c) engine.runCycle();
  ASSERT_TRUE(engine.shardStreamer()->drain(60000.0));

  // Local commits are unaffected no matter what the remote did.
  CheckpointStore store(dir);
  ASSERT_FALSE(store.epochs().empty());
  for (const std::uint64_t epoch : store.epochs())
    EXPECT_TRUE(store.chainValid(epoch)) << "epoch " << epoch;
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{engine.cycles()});

  // Every remote epoch that claims to be committed must verify against
  // its placement map — a torn copy may exist only WITHOUT a marker or
  // with a marker whose pins expose it.
  DirRemoteStore remote(remoteDir);
  for (const std::string& epochDir : remote.listEpochs()) {
    if (!remote.stat(epochDir, kPlacementFile)) continue;  // given up
    PlacementMap placement;
    try {
      placement = parsePlacement(remote.get(epochDir, kPlacementFile),
                                 epochDir);
    } catch (const IoError&) {
      continue;  // torn marker: refused by recovery, so harmless
    }
    for (const PlacementMap::Row& row : placement.rows) {
      const std::string contents = remote.get(epochDir, row.file);
      const bool sound = contents.size() == row.bytes &&
                         crc32(contents.data(), contents.size()) == row.crc;
      // A mismatch here is exactly what tryHealFromRemote refuses; it
      // must never be the only copy of a *locally sound* epoch, which
      // we already verified above.
      if (!sound) SUCCEED();
    }
  }
}

}  // namespace
}  // namespace tkmc
