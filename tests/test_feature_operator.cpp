#include "sunway/feature_operator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tabulation/region_features.hpp"

namespace tkmc {
namespace {

class FeatureOperatorTest : public ::testing::Test {
 protected:
  FeatureOperatorTest()
      : cet_(2.87, 4.0), net_(cet_),
        table_(net_.distances(), standardPqSets()),
        lattice_(12, 12, 12, 2.87), state_(lattice_) {
    Rng rng(55);
    state_.randomAlloy(0.25, 0, rng);
    state_.setSpeciesAt(center_, Species::kVacancy);
  }

  Cet cet_;
  Net net_;
  FeatureTable table_;
  BccLattice lattice_;
  LatticeState state_;
  Vec3i center_{6, 6, 6};
};

TEST_F(FeatureOperatorTest, MatchesSerialReferenceForAllStates) {
  CpeGrid grid;
  const FeatureOperator op(net_, table_, grid);
  const RegionFeatures reference(net_, table_);
  Vet vet = Vet::gather(cet_, state_, center_);

  std::vector<float> cpeOut;
  op.compute(vet, kNumJumpDirections, cpeOut);
  std::vector<double> refOut;
  Vet refVet = vet;
  reference.computeStates(refVet, kNumJumpDirections, refOut);

  ASSERT_EQ(cpeOut.size(), refOut.size());
  for (std::size_t i = 0; i < refOut.size(); ++i)
    ASSERT_NEAR(cpeOut[i], refOut[i], 2e-4) << "index " << i;
}

TEST_F(FeatureOperatorTest, LeavesInputVetUntouched) {
  CpeGrid grid;
  const FeatureOperator op(net_, table_, grid);
  const Vet vet = Vet::gather(cet_, state_, center_);
  const std::vector<Species> snapshot = vet.data();
  std::vector<float> out;
  op.compute(vet, kNumJumpDirections, out);
  EXPECT_EQ(vet.data(), snapshot);
}

TEST_F(FeatureOperatorTest, ChargesDmaTrafficAndFlops) {
  CpeGrid grid;
  const FeatureOperator op(net_, table_, grid);
  const Vet vet = Vet::gather(cet_, state_, center_);
  std::vector<float> out;
  op.compute(vet, kNumJumpDirections, out);
  const Traffic t = grid.collectTraffic();
  EXPECT_GT(t.mainReadBytes, 0u);
  // Output features must be written back exactly once.
  EXPECT_EQ(t.mainWriteBytes, out.size() * sizeof(float));
  EXPECT_GT(t.flops, 0u);
}

TEST_F(FeatureOperatorTest, WorkingSetFitsLdm) {
  CpeGrid grid;
  const FeatureOperator op(net_, table_, grid);
  const Vet vet = Vet::gather(cet_, state_, center_);
  std::vector<float> out;
  op.compute(vet, kNumJumpDirections, out);
  EXPECT_LE(grid.maxLdmHighWater(), grid.spec().ldmBytes);
}

TEST_F(FeatureOperatorTest, FewerFinalStatesProduceSmallerOutput) {
  CpeGrid grid;
  const FeatureOperator op(net_, table_, grid);
  const Vet vet = Vet::gather(cet_, state_, center_);
  std::vector<float> all, initialOnly;
  op.compute(vet, kNumJumpDirections, all);
  op.compute(vet, 0, initialOnly);
  EXPECT_EQ(all.size(), initialOnly.size() * 9);
  // Initial-state block identical.
  for (std::size_t i = 0; i < initialOnly.size(); ++i)
    EXPECT_EQ(all[i], initialOnly[i]);
}

TEST_F(FeatureOperatorTest, StandardCutoffAlsoFitsLdm) {
  const Cet bigCet(2.87, kDefaultCutoff);
  const Net bigNet(bigCet);
  const FeatureTable bigTable(bigNet.distances(), standardPqSets());
  // Need a box large enough for the 6.5 A vacancy system.
  BccLattice lat(24, 24, 24, 2.87);
  LatticeState st(lat);
  Rng rng(66);
  st.randomAlloy(0.1, 0, rng);
  st.setSpeciesAt({12, 12, 12}, Species::kVacancy);
  CpeGrid grid;
  const FeatureOperator op(bigNet, bigTable, grid);
  const Vet vet = Vet::gather(bigCet, st, {12, 12, 12});
  std::vector<float> out;
  op.compute(vet, kNumJumpDirections, out);
  EXPECT_EQ(out.size(), 9u * 253u * 64u);
  EXPECT_LE(grid.maxLdmHighWater(), grid.spec().ldmBytes);
}

}  // namespace
}  // namespace tkmc
