#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/eam_energy_model.hpp"
#include "parallel/coordinated_checkpoint.hpp"
#include "parallel/parallel_engine.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

struct ParallelWorld {
  ParallelWorld(std::uint64_t seed, int cells = 16, int vacancies = 6)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(cells, cells, cells, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.12, vacancies, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

std::string tempDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// 2x2x1 fail-stop stack with incremental checkpoints armed.
ParallelConfig deltaConfig(std::uint64_t seed, const std::string& dir) {
  ParallelConfig cfg;
  cfg.seed = seed;
  cfg.tStop = 5e-8;
  cfg.rankGrid = {2, 2, 1};
  cfg.checkpointDir = dir;
  cfg.checkpointCadence = 1;
  cfg.heartbeatIntervalMs = 5.0;
  cfg.heartbeatTimeoutMs = 20.0;
  cfg.checkpointMode = CheckpointMode::kDelta;
  return cfg;
}

void flipByteInFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  ASSERT_FALSE(contents.empty());
  contents[contents.size() / 2] ^= 0x01;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

// --- Hand-built one-rank chains (store-level semantics) ----------------

ShardRecord tinyFullShard(std::vector<std::uint8_t> species) {
  ShardRecord s;
  s.rank = 0;
  s.originCells = {0, 0, 0};
  s.extentCells = {1, 1, 1};  // two sites: one page, partially filled
  s.rngState = {1, 2, 3, 4};
  s.vacancyOrder = {{0, 0, 0}};
  s.species = std::move(species);
  return s;
}

EpochManifest tinyManifest(std::uint64_t epoch) {
  EpochManifest m;
  m.epoch = epoch;
  m.rankGrid = {1, 1, 1};
  m.globalCells = {1, 1, 1};
  m.latticeConstant = 2.87;
  m.tStop = 1e-8;
  m.seed = 7;
  return m;
}

std::uint32_t commitTinyFull(CheckpointStore& store, std::uint64_t epoch,
                             std::vector<std::uint8_t> species) {
  store.beginEpoch(epoch);
  EpochManifest m = tinyManifest(epoch);
  m.shards.push_back(store.stageShard(epoch, tinyFullShard(std::move(species))));
  return store.commitEpoch(m);
}

std::uint32_t commitTinyDelta(CheckpointStore& store, std::uint64_t epoch,
                              std::uint64_t base, std::uint32_t baseCrc,
                              std::vector<std::uint8_t> pageSpecies) {
  store.beginEpoch(epoch);
  ShardRecord d = tinyFullShard({});
  d.delta = true;
  d.baseEpoch = base;
  d.rngState = {epoch, epoch + 1, epoch + 2, epoch + 3};
  ShardRecord::DirtyPage page;
  page.index = 0;
  page.species = std::move(pageSpecies);
  d.dirtyPages.push_back(std::move(page));
  EpochManifest m = tinyManifest(epoch);
  m.baseEpoch = base;
  m.baseCrc = baseCrc;
  m.shards.push_back(store.stageShard(epoch, d));
  return store.commitEpoch(m);
}

TEST(DeltaStore, HandBuiltChainResolvesByReplayingDirtyPages) {
  CheckpointStore store(tempDir("tkmc_delta_chain"));
  const std::uint32_t crc0 = commitTinyFull(store, 0, {0, 1});
  const std::uint32_t crc1 = commitTinyDelta(store, 1, 0, crc0, {1, 1});
  commitTinyDelta(store, 2, 1, crc1, {2, 0});

  EXPECT_TRUE(store.chainValid(0));
  EXPECT_TRUE(store.chainValid(1));
  EXPECT_TRUE(store.chainValid(2));
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{2});

  // The raw shard stays a delta; resolution replays the chain.
  const EpochManifest m2 = store.loadManifest(2);
  ASSERT_TRUE(m2.isDelta());
  EXPECT_EQ(*m2.baseEpoch, 1u);
  const ShardRecord raw = store.loadShard(2, m2.shards[0]);
  EXPECT_TRUE(raw.delta);
  EXPECT_EQ(raw.baseEpoch, 1u);
  ASSERT_EQ(raw.dirtyPages.size(), 1u);

  const std::vector<ShardRecord> at2 = store.resolveShards(2);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_FALSE(at2[0].delta);
  EXPECT_EQ(at2[0].species, (std::vector<std::uint8_t>{2, 0}));
  EXPECT_EQ(at2[0].rngState, (std::array<std::uint64_t, 4>{2, 3, 4, 5}));

  // Intermediate links resolve to their own state, not the tip's.
  const std::vector<ShardRecord> at1 = store.resolveShards(1);
  EXPECT_EQ(at1[0].species, (std::vector<std::uint8_t>{1, 1}));
  const std::vector<ShardRecord> at0 = store.resolveShards(0);
  EXPECT_EQ(at0[0].species, (std::vector<std::uint8_t>{0, 1}));
}

TEST(DeltaStore, RecommittedBasePinBreaksTheChain) {
  CheckpointStore store(tempDir("tkmc_delta_pin"));
  const std::uint32_t crc0 = commitTinyFull(store, 0, {0, 1});
  commitTinyDelta(store, 1, 0, crc0, {1, 0});
  ASSERT_TRUE(store.chainValid(1));

  // Replace epoch 0 with different content: the delta's recorded pin no
  // longer matches the sealed base manifest, so the chain breaks loudly
  // instead of reassembling against the wrong base.
  commitTinyFull(store, 0, {2, 2});
  EXPECT_TRUE(store.chainValid(0));
  EXPECT_FALSE(store.chainValid(1));
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{0});
  EXPECT_THROW((void)store.resolveShards(1), IoError);
}

TEST(DeltaStore, OverDepthChainsAreInvalidForAStricterReader) {
  const std::string dir = tempDir("tkmc_delta_depth");
  CheckpointStore writer(dir);
  std::uint32_t crc = commitTinyFull(writer, 0, {0, 1});
  for (std::uint64_t e = 1; e <= 3; ++e)
    crc = commitTinyDelta(writer, e, e - 1, crc, {1, static_cast<std::uint8_t>(e % 3)});
  EXPECT_TRUE(writer.chainValid(3));  // depth 3 <= default bound 8
  EXPECT_EQ(writer.newestCompleteEpoch(), std::uint64_t{3});

  CheckpointStore reader(dir);
  reader.setMaxDeltaChain(2);
  EXPECT_FALSE(reader.chainValid(3));
  EXPECT_TRUE(reader.chainValid(2));
  EXPECT_EQ(reader.newestCompleteEpoch(), std::uint64_t{2});
  EXPECT_THROW((void)reader.resolveShards(3), IoError);
  EXPECT_THROW(reader.setMaxDeltaChain(0), Error);
}

TEST(DeltaStore, MissingBaseLinkDisqualifiesDescendants) {
  CheckpointStore store(tempDir("tkmc_delta_missing_base"));
  std::uint32_t crc = commitTinyFull(store, 0, {0, 1});
  for (std::uint64_t e = 1; e <= 3; ++e)
    crc = commitTinyDelta(store, e, e - 1, crc, {1, 1});
  ASSERT_EQ(store.newestCompleteEpoch(), std::uint64_t{3});

  std::filesystem::remove_all(store.epochPath(2));
  EXPECT_FALSE(store.chainValid(3));  // its base chain has a hole
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{1});
  EXPECT_THROW((void)store.resolveShards(3), IoError);

  std::filesystem::remove_all(store.epochPath(1));
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{0});
}

TEST(DeltaStore, CrcMismatchedLinkDisqualifiesDescendantsButGcKeepsThem) {
  CheckpointStore store(tempDir("tkmc_delta_rot"));
  std::uint32_t crc = commitTinyFull(store, 0, {0, 1});
  for (std::uint64_t e = 1; e <= 3; ++e)
    crc = commitTinyDelta(store, e, e - 1, crc, {2, 0});
  flipByteInFile(store.epochPath(1) + "/rank_0.tkc");

  // The rotted link and everything chained through it is invalid...
  EXPECT_FALSE(store.chainValid(1));
  EXPECT_FALSE(store.chainValid(2));
  EXPECT_FALSE(store.chainValid(3));
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{0});

  // ...and startup GC removes only the locally torn epoch. Epochs 2 and
  // 3 are locally sound (their base might reappear on a shared
  // filesystem), so they survive the sweep and stay skipped by readers.
  EXPECT_EQ(store.gcStaleArtifacts(), 1);
  EXPECT_EQ(store.epochs(), (std::vector<std::uint64_t>{0, 2, 3}));
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{0});
}

TEST(DeltaStore, StartupGCRemovesTmpDirsAndTornEpochs) {
  CheckpointStore store(tempDir("tkmc_delta_gc"));
  commitTinyFull(store, 0, {0, 1});
  store.beginEpoch(1);  // orphaned staging dir: crash before commit
  store.stageShard(1, tinyFullShard({1, 1}));
  commitTinyFull(store, 2, {2, 2});
  std::filesystem::resize_file(store.epochPath(2) + "/manifest.tkm", 40);

  ASSERT_TRUE(std::filesystem::exists(store.stagePath(1)));
  EXPECT_EQ(store.gcStaleArtifacts(), 2);
  EXPECT_FALSE(std::filesystem::exists(store.stagePath(1)));
  EXPECT_EQ(store.epochs(), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(store.gcStaleArtifacts(), 0);  // idempotent
}

// --- Engine-written delta epochs ---------------------------------------

TEST(DeltaEngine, CadenceOneRunWritesChainedDeltasThatResolveBitExactly) {
  const std::string dir = tempDir("tkmc_delta_engine");
  ParallelWorld w(51);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, deltaConfig(61, dir));
  for (int c = 0; c < 4; ++c) engine.runCycle();

  CheckpointStore store(dir);
  ASSERT_EQ(store.epochs(), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(store.loadManifest(0).isDelta());
  std::uint32_t expectedPin = store.loadManifest(0).selfCrc;
  for (std::uint64_t e = 1; e <= 4; ++e) {
    const EpochManifest m = store.loadManifest(e);
    ASSERT_TRUE(m.isDelta()) << "epoch " << e;
    EXPECT_EQ(*m.baseEpoch, e - 1) << "epoch " << e;
    EXPECT_EQ(m.baseCrc, expectedPin) << "epoch " << e;
    expectedPin = m.selfCrc;
  }
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{4});

  const LatticeState rebuilt = CheckpointStore::reassemble(
      store.loadManifest(4), store.resolveShards(4));
  EXPECT_TRUE(rebuilt == engine.assembleGlobalState());
  EXPECT_EQ(rebuilt.contentHash(), engine.assembleGlobalState().contentHash());
}

TEST(DeltaEngine, ResumeFromADeltaEpochContinuesBitExactly) {
  const std::string dir = tempDir("tkmc_delta_resume");
  ParallelWorld a(52), b(52);
  EamEnergyModel ma(a.cet, a.net, a.eam), mb(b.cet, b.net, b.eam);
  ParallelEngine original(a.state, ma, a.cet, deltaConfig(62, dir));
  for (int c = 0; c < 6; ++c) original.runCycle();

  // Delta checkpointing must be side-effect-free on the physics.
  ParallelConfig plain = deltaConfig(62, "");
  plain.checkpointDir.clear();
  plain.heartbeatTimeoutMs = 0.0;
  ParallelEngine witness(b.state, mb, b.cet, plain);
  for (int c = 0; c < 6; ++c) witness.runCycle();
  ASSERT_TRUE(original.assembleGlobalState() == witness.assembleGlobalState());

  // Epoch 4 is a delta link; resuming from it replays its base chain
  // and restores the exact RNG streams, so cycles 5 and 6 match.
  ParallelWorld c(52);
  EamEnergyModel mc(c.cet, c.net, c.eam);
  ParallelConfig resumeCfg = deltaConfig(62, "");
  resumeCfg.checkpointDir.clear();
  resumeCfg.heartbeatTimeoutMs = 0.0;
  CheckpointStore store(dir);
  ASSERT_TRUE(store.loadManifest(4).isDelta());
  ParallelEngine resumed(mc, c.cet, resumeCfg, store, 4);
  EXPECT_EQ(resumed.cycles(), 4u);
  while (resumed.cycles() < original.cycles()) resumed.runCycle();
  EXPECT_EQ(resumed.totalEvents(), original.totalEvents());
  EXPECT_EQ(resumed.discardedEvents(), original.discardedEvents());
  EXPECT_TRUE(resumed.assembleGlobalState() == original.assembleGlobalState());
}

TEST(DeltaEngine, ConsolidationBoundsChainsAndGCsSupersededDeltas) {
  const std::string dir = tempDir("tkmc_delta_consolidate");
  ParallelWorld w(53);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = deltaConfig(63, dir);
  cfg.maxDeltaChain = 3;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  for (int c = 0; c < 8; ++c) engine.runCycle();

  // Epochs 4 and 8 consolidate (a fourth link would exceed the bound);
  // each consolidation GCs the deltas it supersedes. Only the
  // self-contained fulls remain.
  CheckpointStore store(dir);
  EXPECT_EQ(store.epochs(), (std::vector<std::uint64_t>{0, 4, 8}));
  for (const std::uint64_t e : store.epochs())
    EXPECT_FALSE(store.loadManifest(e).isDelta()) << "epoch " << e;
  EXPECT_EQ(store.newestCompleteEpoch(), std::uint64_t{8});
  const LatticeState rebuilt = CheckpointStore::reassemble(
      store.loadManifest(8), store.resolveShards(8));
  EXPECT_TRUE(rebuilt == engine.assembleGlobalState());
}

TEST(DeltaEngine, CorruptShardWriteFallsBackToTheNewestValidChain) {
  const std::string dir = tempDir("tkmc_delta_rot_write");
  ParallelWorld w(54);
  EamEnergyModel model(w.cet, w.net, w.eam);
  // The scope must cover construction: the construction epoch stages
  // hits 1..4, so ordinal 6 rots a shard of epoch 1 between CRC
  // computation and the write.
  FaultInjector inj(17);
  inj.armSchedule("checkpoint.shard_corrupt_write", {6});
  FaultScope scope(inj);
  ParallelEngine engine(w.state, model, w.cet, deltaConfig(64, dir));
  for (int c = 0; c < 3; ++c) engine.runCycle();
  EXPECT_EQ(inj.triggerCount("checkpoint.shard_corrupt_write"), 1u);

  // Epoch 1 fails its manifest CRC; epochs 2 and 3 chain through it, so
  // the newest epoch a reader may trust is the construction full.
  CheckpointStore store(dir);
  ASSERT_EQ(store.epochs(), (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_FALSE(store.chainValid(1));
  EXPECT_FALSE(store.chainValid(3));
  ASSERT_EQ(store.newestCompleteEpoch(), std::uint64_t{0});

  // Falling back there and replaying is bit-exact with the live engine.
  ParallelWorld f(54);
  EamEnergyModel fm(f.cet, f.net, f.eam);
  ParallelConfig cfg = deltaConfig(64, "");
  cfg.checkpointDir.clear();
  cfg.heartbeatTimeoutMs = 0.0;
  ParallelEngine resumed(fm, f.cet, cfg, store, 0);
  while (resumed.cycles() < engine.cycles()) resumed.runCycle();
  EXPECT_TRUE(resumed.assembleGlobalState() == engine.assembleGlobalState());
}

// --- Elastic grow recovery ---------------------------------------------

/// Fresh engine resumed from the recovery epoch on the engine's final
/// grid must replay to the same state — recovery is bit-reproducible.
/// A *delta* recovery epoch may have been GC'd by the first
/// post-recovery consolidation; the oldest surviving epoch at or after
/// it (that consolidating full, written on the final grid with exact
/// streams) then carries the same guarantee.
void expectMatchesFreshResume(ParallelEngine& engine, const std::string& dir) {
  ParallelWorld fresh(99);  // provides cet/model only; state comes from disk
  EamEnergyModel model(fresh.cet, fresh.net, fresh.eam);
  ParallelConfig cfg;
  cfg.tStop = 5e-8;
  cfg.rankGrid = engine.rankGrid();
  cfg.heartbeatTimeoutMs = 0.0;
  CheckpointStore store(dir);
  std::uint64_t resumeEpoch = engine.lastRecoveryEpoch();
  if (!store.chainValid(resumeEpoch)) {
    bool found = false;
    for (const std::uint64_t e : store.epochs())
      if (e >= resumeEpoch && store.chainValid(e)) {
        resumeEpoch = e;
        found = true;
        break;
      }
    ASSERT_TRUE(found) << "no resumable epoch at or after the recovery epoch";
  }
  ParallelEngine resumed(model, fresh.cet, cfg, store, resumeEpoch);
  while (resumed.cycles() < engine.cycles()) resumed.runCycle();
  EXPECT_EQ(resumed.totalEvents(), engine.totalEvents());
  EXPECT_EQ(resumed.discardedEvents(), engine.discardedEvents());
  EXPECT_DOUBLE_EQ(resumed.time(), engine.time());
  EXPECT_TRUE(resumed.assembleGlobalState() == engine.assembleGlobalState());
}

TEST(GrowRecovery, SpareRankKeepsTheGridAndStaysBitExact) {
  const std::string dir = tempDir("tkmc_grow_spare");
  ParallelWorld w(55), v(55);
  EamEnergyModel model(w.cet, w.net, w.eam), vm(v.cet, v.net, v.eam);
  ParallelConfig cfg = deltaConfig(65, dir);
  cfg.spareRanks = 1;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  {
    FaultInjector inj(18);
    inj.armSchedule("comm.rank_kill", {10});  // mid-fold, cycle 1
    FaultScope scope(inj);
    for (int c = 0; c < 5; ++c) engine.runCycle();
    EXPECT_EQ(inj.triggerCount("comm.rank_kill"), 1u);
  }
  const RecoveryStats stats = engine.recoveryStats();
  EXPECT_EQ(stats.rankFailures, 1u);
  EXPECT_EQ(stats.growRecoveries, 1u);
  EXPECT_EQ(engine.rankGrid(), (Vec3i{2, 2, 1}));  // grid held, not shrunk
  EXPECT_EQ(engine.spareRanksRemaining(), 0);
  EXPECT_EQ(engine.vacancyCount(), 6);
  EXPECT_TRUE(engine.ghostsConsistent());

  // Grow recovery restores the exact per-rank streams of the checkpoint
  // epoch, so the whole run is indistinguishable from one that never
  // lost a rank.
  ParallelConfig plain = deltaConfig(65, "");
  plain.checkpointDir.clear();
  plain.heartbeatTimeoutMs = 0.0;
  ParallelEngine untouched(v.state, vm, v.cet, plain);
  for (int c = 0; c < 5; ++c) untouched.runCycle();
  EXPECT_EQ(engine.totalEvents(), untouched.totalEvents());
  EXPECT_TRUE(engine.assembleGlobalState() == untouched.assembleGlobalState());
  expectMatchesFreshResume(engine, dir);
}

TEST(GrowRecovery, ExhaustedPoolFallsBackToShrink) {
  const std::string dir = tempDir("tkmc_grow_exhausted");
  ParallelWorld w(56);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = deltaConfig(66, dir);
  cfg.spareRanks = 1;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  {
    FaultInjector inj(19);
    inj.armSchedule("comm.rank_kill", {10, 60});
    FaultScope scope(inj);
    for (int c = 0; c < 5; ++c) engine.runCycle();
    EXPECT_EQ(inj.triggerCount("comm.rank_kill"), 2u);
  }
  const RecoveryStats stats = engine.recoveryStats();
  EXPECT_EQ(stats.rankFailures, 2u);
  EXPECT_EQ(stats.growRecoveries, 1u);  // first kill grew, second shrank
  EXPECT_EQ(engine.spareRanksRemaining(), 0);
  EXPECT_LT(engine.rankGrid().x * engine.rankGrid().y * engine.rankGrid().z, 4);
  EXPECT_EQ(engine.vacancyCount(), 6);
  EXPECT_TRUE(engine.ghostsConsistent());
  expectMatchesFreshResume(engine, dir);
}

TEST(GrowRecovery, DeltaAndGrowMetricsReachTheTelemetryRegistry) {
  telemetry::resetAll();
  telemetry::ScopedEnable enable;
  const std::string dir = tempDir("tkmc_grow_telemetry");
  ParallelWorld w(57);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg = deltaConfig(67, dir);
  cfg.spareRanks = 1;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  FaultInjector inj(20);
  inj.armSchedule("comm.rank_kill", {10});
  FaultScope scope(inj);
  for (int c = 0; c < 3; ++c) engine.runCycle();
  ASSERT_EQ(engine.recoveryStats().growRecoveries, 1u);
  namespace tm = telemetry;
  EXPECT_EQ(tm::metrics().counter("recovery.grow_count").value(), 1u);
  EXPECT_GT(tm::metrics().histogram("checkpoint.delta_pages").count(), 0u);
  EXPECT_GE(tm::metrics().gauge("checkpoint.delta_ratio").value(), 0.0);
  EXPECT_LE(tm::metrics().gauge("checkpoint.delta_ratio").value(), 1.0);
  const std::string json = tm::metrics().toJson();
  EXPECT_NE(json.find("recovery.grow_count"), std::string::npos);
  EXPECT_NE(json.find("checkpoint.delta_pages"), std::string::npos);
  EXPECT_NE(json.find("checkpoint.delta_ratio"), std::string::npos);
  telemetry::resetAll();
}

// --- Chaos: delta chains + elastic recovery under seeded kills ---------

TEST(DeltaGrowChaos, TwentySeededKillsRecoverBitExactly) {
  // Twenty seeded schedules over the delta-checkpoint + spare-pool
  // stack: one random kill each, alternating between a run with a spare
  // (must grow: grid held) and one without (must shrink). Every run must
  // keep all committed epochs loadable and match a fresh resume from the
  // recovery epoch bit-exactly.
  for (std::uint64_t s = 0; s < 20; ++s) {
    SCOPED_TRACE("schedule " + std::to_string(s));
    const std::string dir = tempDir("tkmc_delta_chaos_" + std::to_string(s));
    ParallelWorld w(58);
    EamEnergyModel model(w.cet, w.net, w.eam);
    ParallelConfig cfg = deltaConfig(68, dir);
    cfg.maxDeltaChain = 4;
    cfg.spareRanks = static_cast<int>(s % 2);
    ParallelEngine engine(w.state, model, w.cet, cfg);
    Rng pick(2000 + s);
    const std::uint64_t ordinal = 1 + pick.uniformBelow(100);
    FaultInjector inj(s);
    inj.armSchedule("comm.rank_kill", {ordinal});
    FaultScope scope(inj);
    for (int c = 0; c < 5; ++c) engine.runCycle();
    ASSERT_EQ(inj.triggerCount("comm.rank_kill"), 1u);
    ASSERT_EQ(engine.recoveryStats().rankFailures, 1u);
    ASSERT_EQ(engine.vacancyCount(), 6);
    ASSERT_TRUE(engine.ghostsConsistent());
    const int volume =
        engine.rankGrid().x * engine.rankGrid().y * engine.rankGrid().z;
    if (cfg.spareRanks > 0) {
      ASSERT_EQ(engine.recoveryStats().growRecoveries, 1u);
      ASSERT_EQ(volume, 4);  // re-admitted: full grid retained
      ASSERT_EQ(engine.spareRanksRemaining(), 0);
    } else {
      ASSERT_EQ(engine.recoveryStats().growRecoveries, 0u);
      ASSERT_LT(volume, 4);  // no pool: deterministic shrink
    }
    CheckpointStore store(dir);
    for (const std::uint64_t epoch : store.epochs()) {
      ASSERT_NO_THROW({
        const EpochManifest manifest = store.loadManifest(epoch);
        const auto shards = store.loadShards(manifest);
        ASSERT_EQ(shards.size(), manifest.shards.size());
      }) << "committed epoch " << epoch
         << " references a missing or torn shard";
    }
    expectMatchesFreshResume(engine, dir);
  }
}

}  // namespace
}  // namespace tkmc
