#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sunway/arch_spec.hpp"
#include "sunway/cpe_grid.hpp"
#include "sunway/ldm.hpp"
#include "sunway/perf_model.hpp"

namespace tkmc {
namespace {

TEST(Ldm, AllocatesUntilCapacity) {
  Ldm ldm(1024);
  auto a = ldm.alloc<float>(64);   // 256 B
  auto b = ldm.alloc<float>(128);  // 512 B
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_LE(ldm.used(), ldm.capacity());
}

TEST(Ldm, OverflowThrows) {
  Ldm ldm(256);
  EXPECT_THROW(ldm.alloc<double>(1000), Error);
}

TEST(Ldm, ResetReleasesArena) {
  Ldm ldm(512);
  ldm.alloc<float>(100);
  const std::size_t used = ldm.used();
  EXPECT_GT(used, 0u);
  ldm.reset();
  EXPECT_EQ(ldm.used(), 0u);
  EXPECT_EQ(ldm.highWater(), used);  // high-water survives reset
  ldm.alloc<float>(100);
  EXPECT_EQ(ldm.highWater(), used);
}

TEST(Ldm, AllocationsAreAligned) {
  Ldm ldm(4096);
  auto a = ldm.alloc<std::uint8_t>(3);
  auto b = ldm.alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
}

TEST(ArchSpec, RooflineKneeMatchesPaper) {
  const ArchSpec spec;
  EXPECT_NEAR(spec.peakSpFlops() / spec.mainMemoryBandwidth, 43.63, 1e-9);
}

TEST(ArchSpec, AttainableIsMinOfBounds) {
  const ArchSpec spec;
  EXPECT_DOUBLE_EQ(spec.attainableFlops(1.0), spec.mainMemoryBandwidth);
  EXPECT_DOUBLE_EQ(spec.attainableFlops(1e6), spec.peakSpFlops());
  EXPECT_DOUBLE_EQ(spec.attainableFlops(spec.rooflineKnee), spec.peakSpFlops());
}

TEST(CpeGrid, HasSixtyFourCpesInEightByEightMesh) {
  CpeGrid grid;
  EXPECT_EQ(grid.size(), 64);
  EXPECT_EQ(grid.cpe(9).row(), 1);
  EXPECT_EQ(grid.cpe(9).col(), 1);
  EXPECT_EQ(grid.cpe(63).row(), 7);
  EXPECT_EQ(grid.cpe(63).col(), 7);
}

TEST(CpeGrid, RunExecutesKernelOnEveryCpe) {
  CpeGrid grid;
  std::vector<int> visited(64, 0);
  grid.run([&](CpeContext& cpe) { visited[static_cast<std::size_t>(cpe.id())]++; });
  for (int v : visited) EXPECT_EQ(v, 1);
}

TEST(CpeGrid, DmaMovesBytesAndCharges) {
  CpeGrid grid;
  std::vector<float> main(16, 3.5f);
  std::vector<float> back(16, 0.0f);
  grid.run([&](CpeContext& cpe) {
    if (cpe.id() != 0) return;
    auto buf = cpe.ldm().alloc<float>(16);
    cpe.dmaGet(buf.data(), main.data(), 16 * sizeof(float));
    for (float v : buf) EXPECT_EQ(v, 3.5f);
    cpe.dmaPut(back.data(), buf.data(), 16 * sizeof(float));
  });
  EXPECT_EQ(back[7], 3.5f);
  const Traffic t = grid.collectTraffic();
  EXPECT_EQ(t.mainReadBytes, 16u * sizeof(float));
  EXPECT_EQ(t.mainWriteBytes, 16u * sizeof(float));
  EXPECT_EQ(t.rmaBytes, 0u);
}

TEST(CpeGrid, RmaDoesNotTouchMainMemoryCounters) {
  CpeGrid grid;
  std::vector<float> data(8, 1.0f);
  grid.run([&](CpeContext& cpe) {
    if (cpe.id() != 3) return;
    auto buf = cpe.ldm().alloc<float>(8);
    cpe.rmaGet(buf.data(), data.data(), 8 * sizeof(float));
  });
  const Traffic t = grid.collectTraffic();
  EXPECT_EQ(t.mainBytes(), 0u);
  EXPECT_EQ(t.rmaBytes, 8u * sizeof(float));
}

TEST(CpeGrid, CollectTrafficResetsCounters) {
  CpeGrid grid;
  std::vector<float> data(4, 0.0f);
  grid.run([&](CpeContext& cpe) {
    auto buf = cpe.ldm().alloc<float>(4);
    cpe.dmaGet(buf.data(), data.data(), 4 * sizeof(float));
  });
  EXPECT_GT(grid.collectTraffic().mainReadBytes, 0u);
  EXPECT_EQ(grid.collectTraffic().mainReadBytes, 0u);
}

TEST(PerfModel, MemoryBoundKernelIsBandwidthLimited) {
  const PerfModel model;
  Traffic t;
  t.mainReadBytes = 100 << 20;
  t.flops = 10 << 20;  // intensity ~0.1
  const RooflinePoint p = model.analyze("memtest", t);
  EXPECT_FALSE(model.computeBound(t));
  EXPECT_NEAR(p.modeledSeconds,
              static_cast<double>(t.mainBytes()) /
                  model.spec().mainMemoryBandwidth,
              1e-12);
}

TEST(PerfModel, ComputeBoundKernelIsPeakLimited) {
  const PerfModel model;
  Traffic t;
  t.mainReadBytes = 1 << 10;
  t.flops = 1ULL << 32;  // huge intensity
  const RooflinePoint p = model.analyze("flops", t);
  EXPECT_TRUE(model.computeBound(t));
  EXPECT_NEAR(p.peakFraction, 1.0, 1e-12);
  EXPECT_NEAR(p.modeledSeconds,
              static_cast<double>(t.flops) / model.spec().peakSpFlops(), 1e-18);
}

TEST(Traffic, AccumulationOperator) {
  Traffic a, b;
  a.mainReadBytes = 10;
  a.flops = 5;
  b.mainWriteBytes = 20;
  b.rmaBytes = 7;
  a += b;
  EXPECT_EQ(a.mainBytes(), 30u);
  EXPECT_EQ(a.rmaBytes, 7u);
  EXPECT_EQ(a.flops, 5u);
}

}  // namespace
}  // namespace tkmc
