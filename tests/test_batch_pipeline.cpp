// Batched vacancy-system evaluation pipeline (EnergyModel::
// stateEnergiesBatch and the engines' collect-then-dispatch refresh).
//
// The acceptance bar is bitwise: a batch over N systems must return
// exactly what N per-system calls return, in order, for the Sunway CPE
// backend and the double-precision reference backend alike, and engines
// driven through the batched refresh must walk bit-identical
// trajectories (same RNG draw consumption) as the loop-based default.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "kmc/nnp_energy_model.hpp"
#include "kmc/serial_engine.hpp"
#include "kmc/vacancy_cache.hpp"
#include "sunway/sunway_energy_model.hpp"

namespace tkmc {
namespace {

class BatchPipelineTest : public ::testing::Test {
 protected:
  BatchPipelineTest()
      : cet_(2.87, 4.0), net_(cet_),
        table_(net_.distances(), standardPqSets()), network_({64, 16, 16, 1}),
        lattice_(14, 14, 14, 2.87), state_(lattice_) {
    Rng rng(7);
    network_.initHe(rng);
    Rng arng(8);
    state_.randomAlloy(0.15, 6, arng);
  }

  std::vector<Vet> gatherAll() const {
    std::vector<Vet> vets;
    for (const Vec3i& vac : state_.vacancies())
      vets.push_back(Vet::gather(cet_, state_, lattice_.wrap(vac)));
    return vets;
  }

  Cet cet_;
  Net net_;
  FeatureTable table_;
  Network network_;
  BccLattice lattice_;
  LatticeState state_;
};

// Forces the loop-based EnergyModel::stateEnergiesBatch default on top of
// any backend — the per-system reference the batched override must match.
class LoopedBatchModel : public EnergyModel {
 public:
  explicit LoopedBatchModel(EnergyModel& inner) : inner_(inner) {}

  std::vector<double> stateEnergies(const LatticeState& state, Vec3i center,
                                    int numFinal) override {
    return inner_.stateEnergies(state, center, numFinal);
  }
  std::vector<double> stateEnergiesFromVet(Vet& vet, int numFinal) override {
    return inner_.stateEnergiesFromVet(vet, numFinal);
  }
  bool supportsVet() const override { return inner_.supportsVet(); }
  const char* name() const override { return "looped-batch"; }

 private:
  EnergyModel& inner_;
};

TEST_F(BatchPipelineTest, SunwayBatchMatchesPerSystemBitwise) {
  SunwayEnergyModel model(cet_, net_, table_, network_);
  std::vector<Vet> vets = gatherAll();
  ASSERT_GE(vets.size(), 3u);

  std::vector<std::vector<double>> perSystem;
  for (Vet& vet : vets)
    perSystem.push_back(model.stateEnergiesFromVet(vet, kNumJumpDirections));

  std::vector<Vet*> ptrs;
  for (Vet& vet : vets) ptrs.push_back(&vet);
  const auto batched = model.stateEnergiesBatch(ptrs, kNumJumpDirections);

  ASSERT_EQ(batched.size(), perSystem.size());
  for (std::size_t i = 0; i < batched.size(); ++i)
    EXPECT_EQ(batched[i], perSystem[i]) << "system " << i;  // bitwise
}

TEST_F(BatchPipelineTest, ReferenceNnpBatchMatchesPerSystemBitwise) {
  NnpEnergyModel model(cet_, net_, table_, network_);
  std::vector<Vet> vets = gatherAll();

  std::vector<std::vector<double>> perSystem;
  for (Vet& vet : vets)
    perSystem.push_back(model.stateEnergiesFromVet(vet, kNumJumpDirections));

  std::vector<Vet*> ptrs;
  for (Vet& vet : vets) ptrs.push_back(&vet);
  const auto batched = model.stateEnergiesBatch(ptrs, kNumJumpDirections);

  ASSERT_EQ(batched.size(), perSystem.size());
  for (std::size_t i = 0; i < batched.size(); ++i)
    EXPECT_EQ(batched[i], perSystem[i]) << "system " << i;  // bitwise
}

TEST_F(BatchPipelineTest, BatchOfOneEqualsPerSystemPath) {
  SunwayEnergyModel model(cet_, net_, table_, network_);
  Vet vet = Vet::gather(cet_, state_, lattice_.wrap(state_.vacancies()[0]));
  Vet copy = vet;
  const auto single = model.stateEnergiesFromVet(vet, kNumJumpDirections);
  Vet* one = &copy;
  const auto batched = model.stateEnergiesBatch({&one, 1}, kNumJumpDirections);
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched.front(), single);
}

TEST_F(BatchPipelineTest, EmptyBatchReturnsNothing) {
  SunwayEnergyModel model(cet_, net_, table_, network_);
  EXPECT_TRUE(
      model.stateEnergiesBatch(std::span<Vet* const>{}, kNumJumpDirections)
          .empty());
}

TEST_F(BatchPipelineTest, MixedDirtySetAfterHopsMatchesPerSystem) {
  // Drive the cache through real hops so the dirty set is a proper
  // subset (patched neighbours + the re-gathered hopped system), then
  // compare batched vs per-system energies over exactly that set.
  SunwayEnergyModel model(cet_, net_, table_, network_);
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(state_);
  Rng rng(21);
  for (int hop = 0; hop < 10; ++hop) {
    const int v = static_cast<int>(rng.uniformBelow(
        static_cast<std::uint64_t>(state_.vacancies().size())));
    const Vec3i from =
        lattice_.wrap(state_.vacancies()[static_cast<std::size_t>(v)]);
    const Vec3i to = lattice_.wrap(
        from + BccLattice::firstNeighborOffsets()[rng.uniformBelow(8)]);
    if (state_.speciesAt(to) == Species::kVacancy) continue;
    state_.hopVacancy(from, to);
    cache.applyHop(state_, v, from, to);
  }

  std::vector<int> dirty;
  std::vector<Vet*> ptrs;
  for (int v = 0; v < cache.size(); ++v) {
    if (!cache.isDirty(v)) continue;
    dirty.push_back(v);
    ptrs.push_back(&cache.vet(v));
  }
  ASSERT_FALSE(dirty.empty());

  const auto batched = model.stateEnergiesBatch(ptrs, kNumJumpDirections);
  ASSERT_EQ(batched.size(), dirty.size());
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const auto single =
        model.stateEnergiesFromVet(cache.vet(dirty[i]), kNumJumpDirections);
    EXPECT_EQ(batched[i], single) << "dirty system " << dirty[i];
  }
}

TEST_F(BatchPipelineTest, EngineTrajectoryIdenticalToLoopedDispatch) {
  // Two engines over identical lattices and seeds: one drives the Sunway
  // backend's batched dispatch, the other forces the loop-based default
  // through a wrapper. Same events, same times, same RNG consumption.
  LatticeState batchedState(lattice_);
  LatticeState loopedState(lattice_);
  {
    Rng a(8);
    batchedState.randomAlloy(0.15, 6, a);
    Rng b(8);
    loopedState.randomAlloy(0.15, 6, b);
  }
  SunwayEnergyModel batchedModel(cet_, net_, table_, network_);
  SunwayEnergyModel innerModel(cet_, net_, table_, network_);
  LoopedBatchModel loopedModel(innerModel);

  KmcConfig cfg;
  cfg.seed = 42;
  cfg.tEnd = 1e300;
  SerialEngine batched(batchedState, batchedModel, cet_, cfg);
  SerialEngine looped(loopedState, loopedModel, cet_, cfg);

  for (int step = 0; step < 40; ++step) {
    const auto rb = batched.step();
    const auto rl = looped.step();
    ASSERT_EQ(rb.advanced, rl.advanced) << "step " << step;
    if (!rb.advanced) break;
    EXPECT_EQ(rb.vacancyIndex, rl.vacancyIndex) << "step " << step;
    EXPECT_EQ(rb.direction, rl.direction) << "step " << step;
    EXPECT_EQ(rb.from, rl.from) << "step " << step;
    EXPECT_EQ(rb.to, rl.to) << "step " << step;
    EXPECT_EQ(rb.dt, rl.dt) << "step " << step;  // bitwise
  }
  EXPECT_EQ(batched.time(), looped.time());
}

TEST_F(BatchPipelineTest, ModeledDispatchCostAmortizesWithBatchSize) {
  // The modeled SW26010 cost (launch latency + per-run critical path)
  // must strictly favour one batched dispatch over N per-system ones:
  // fewer launches, same traffic. This is the quantity the batch bench
  // reports, so pin its direction here.
  SunwayEnergyModel model(cet_, net_, table_, network_);
  std::vector<Vet> vets = gatherAll();
  ASSERT_GE(vets.size(), 3u);

  model.collectModeledSeconds();
  const std::uint64_t launchesBefore = model.grid().launchCount();
  for (Vet& vet : vets) model.stateEnergiesFromVet(vet, kNumJumpDirections);
  const double perSystem = model.collectModeledSeconds();
  const std::uint64_t perSystemLaunches =
      model.grid().launchCount() - launchesBefore;

  std::vector<Vet*> ptrs;
  for (Vet& vet : vets) ptrs.push_back(&vet);
  const std::uint64_t batchedBefore = model.grid().launchCount();
  model.stateEnergiesBatch(ptrs, kNumJumpDirections);
  const double batched = model.collectModeledSeconds();
  const std::uint64_t batchedLaunches =
      model.grid().launchCount() - batchedBefore;

  EXPECT_LT(batchedLaunches, perSystemLaunches);
  EXPECT_LT(batched, perSystem);
  EXPECT_GT(batched, 0.0);
}

TEST_F(BatchPipelineTest, LdmOverflowFiresWithClearMessage) {
  // A grid whose scratchpads cannot even hold the feature TABLE: the
  // batched dispatch must refuse upfront, naming the working set and the
  // capacity, instead of dying inside the bump allocator.
  ArchSpec tiny;
  tiny.ldmBytes = 512;
  CpeGrid grid(tiny);
  FeatureOperator op(net_, table_, grid);
  Vet vet = Vet::gather(cet_, state_, lattice_.wrap(state_.vacancies()[0]));
  const Vet* one = &vet;
  std::vector<float> out;
  try {
    op.computeBatch({&one, 1}, kNumJumpDirections, out);
    FAIL() << "expected the LDM working-set require to fire";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("batched feature working set"), std::string::npos)
        << what;
    EXPECT_NE(what.find("exceeds LDM capacity"), std::string::npos) << what;
  }
}

TEST_F(BatchPipelineTest, WorkingSetIsConstantInBatchSize) {
  // LDM residency means the per-CPE working set must not grow with the
  // batch; that is what makes arbitrarily large dirty sets dispatchable.
  CpeGrid grid;
  FeatureOperator op(net_, table_, grid);
  std::vector<Vet> vets = gatherAll();
  std::vector<const Vet*> ptrs;
  for (Vet& vet : vets) ptrs.push_back(&vet);
  std::vector<float> out;

  op.computeBatch({ptrs.data(), 1}, kNumJumpDirections, out);
  const std::size_t oneSystem = grid.maxLdmHighWater();
  op.computeBatch(ptrs, kNumJumpDirections, out);
  const std::size_t wholeBatch = grid.maxLdmHighWater();
  EXPECT_EQ(oneSystem, wholeBatch);
  EXPECT_LE(wholeBatch, grid.spec().ldmBytes);
}

TEST_F(BatchPipelineTest, BatchRejectsMismatchedVetSizes) {
  CpeGrid grid;
  FeatureOperator op(net_, table_, grid);
  Vet good = Vet::gather(cet_, state_, lattice_.wrap(state_.vacancies()[0]));
  Vet bad(good.size() + 1);
  const Vet* ptrs[2] = {&good, &bad};
  std::vector<float> out;
  EXPECT_THROW(op.computeBatch({ptrs, 2}, kNumJumpDirections, out), Error);
}

}  // namespace
}  // namespace tkmc
