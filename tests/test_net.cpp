#include "tabulation/net.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"

namespace tkmc {
namespace {

TEST(Net, EveryRegionSiteHasNLocalNeighbors) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  const Net net(cet);
  ASSERT_EQ(net.regionSites(), cet.nRegion());
  for (int s = 0; s < net.regionSites(); ++s)
    EXPECT_EQ(net.neighbors(s).size(),
              static_cast<std::size_t>(cet.nLocal()));
  EXPECT_EQ(net.entryCount(),
            static_cast<std::size_t>(cet.nRegion()) * cet.nLocal());
}

TEST(Net, EightUniqueDistancesAtStandardCutoff) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  const Net net(cet);
  ASSERT_EQ(net.distances().size(), 8u);  // 8 shells within 6.5 A
  for (std::size_t i = 1; i < net.distances().size(); ++i)
    EXPECT_LT(net.distances()[i - 1], net.distances()[i]);
  EXPECT_NEAR(net.distances().front(),
              kLatticeConstantFe * std::sqrt(3.0) / 2.0, 1e-12);  // 1NN
  EXPECT_LE(net.distances().back(), kDefaultCutoff);
}

TEST(Net, EntriesReferenceValidCetIdsAndDistances) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  const Net net(cet);
  for (int s = 0; s < net.regionSites(); ++s)
    for (const Net::Entry& e : net.neighbors(s)) {
      ASSERT_GE(e.siteId, 0);
      ASSERT_LT(e.siteId, cet.nAll());
      ASSERT_GE(e.distIndex, 0);
      ASSERT_LT(static_cast<std::size_t>(e.distIndex), net.distances().size());
    }
}

TEST(Net, StoredDistanceMatchesGeometry) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  const Net net(cet);
  for (int s = 0; s < net.regionSites(); s += 17) {
    for (const Net::Entry& e : net.neighbors(s)) {
      const Vec3i d = cet.site(e.siteId) - cet.site(s);
      const double r = std::sqrt(static_cast<double>(d.norm2())) *
                       kLatticeConstantFe / 2.0;
      EXPECT_NEAR(net.distances()[static_cast<std::size_t>(e.distIndex)], r,
                  1e-12);
    }
  }
}

TEST(Net, NeighborRelationIsSymmetricWithinRegion) {
  const Cet cet(kLatticeConstantFe, 4.0);
  const Net net(cet);
  for (int s = 0; s < net.regionSites(); ++s)
    for (const Net::Entry& e : net.neighbors(s)) {
      if (e.siteId >= cet.nRegion()) continue;  // outer sites have no rows
      bool reciprocal = false;
      for (const Net::Entry& back : net.neighbors(e.siteId))
        if (back.siteId == s) {
          reciprocal = true;
          EXPECT_EQ(back.distIndex, e.distIndex);
          break;
        }
      EXPECT_TRUE(reciprocal);
    }
}

TEST(Net, NoSelfNeighbors) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  const Net net(cet);
  for (int s = 0; s < net.regionSites(); ++s)
    for (const Net::Entry& e : net.neighbors(s)) EXPECT_NE(e.siteId, s);
}

}  // namespace
}  // namespace tkmc
