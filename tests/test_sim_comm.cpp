#include "parallel/sim_comm.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tkmc {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(SimComm, DeliversMessageToRecipient) {
  SimComm comm(4);
  comm.send(0, 2, 7, bytes({1, 2, 3}));
  EXPECT_TRUE(comm.hasMessage(2, 0, 7));
  EXPECT_FALSE(comm.hasMessage(2, 1, 7));
  EXPECT_EQ(comm.receive(2, 0, 7), bytes({1, 2, 3}));
  EXPECT_FALSE(comm.hasMessage(2, 0, 7));
}

TEST(SimComm, FifoOrderPerChannel) {
  SimComm comm(2);
  comm.send(0, 1, 1, bytes({1}));
  comm.send(0, 1, 1, bytes({2}));
  comm.send(0, 1, 1, bytes({3}));
  EXPECT_EQ(comm.receive(1, 0, 1), bytes({1}));
  EXPECT_EQ(comm.receive(1, 0, 1), bytes({2}));
  EXPECT_EQ(comm.receive(1, 0, 1), bytes({3}));
}

TEST(SimComm, TagsAreIndependentChannels) {
  SimComm comm(2);
  comm.send(0, 1, 1, bytes({10}));
  comm.send(0, 1, 2, bytes({20}));
  EXPECT_EQ(comm.receive(1, 0, 2), bytes({20}));
  EXPECT_EQ(comm.receive(1, 0, 1), bytes({10}));
}

TEST(SimComm, SelfSendWorks) {
  SimComm comm(3);
  comm.send(1, 1, 5, bytes({9}));
  EXPECT_EQ(comm.receive(1, 1, 5), bytes({9}));
}

TEST(SimComm, MissingMessageThrows) {
  SimComm comm(2);
  EXPECT_THROW(comm.receive(1, 0, 1), Error);
}

TEST(SimComm, OutOfRangeRanksThrow) {
  SimComm comm(2);
  EXPECT_THROW(comm.send(0, 5, 1, {}), Error);
  EXPECT_THROW(comm.send(-1, 0, 1, {}), Error);
}

TEST(SimComm, ReceiveAllDrainsInSourceOrder) {
  SimComm comm(4);
  comm.send(3, 0, 9, bytes({3}));
  comm.send(1, 0, 9, bytes({1}));
  comm.send(1, 0, 9, bytes({11}));
  const auto all = comm.receiveAll(0, 9);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, 1);
  EXPECT_EQ(all[0].second, bytes({1}));
  EXPECT_EQ(all[1].first, 1);
  EXPECT_EQ(all[1].second, bytes({11}));
  EXPECT_EQ(all[2].first, 3);
  EXPECT_EQ(comm.pendingCount(0, 9), 0);
}

TEST(SimComm, StatsAccumulateAndReset) {
  SimComm comm(2);
  comm.send(0, 1, 1, bytes({1, 2, 3, 4}));
  comm.send(1, 0, 1, bytes({5}));
  EXPECT_EQ(comm.totalBytesSent(), 5u);
  EXPECT_EQ(comm.totalMessagesSent(), 2u);
  comm.resetStats();
  EXPECT_EQ(comm.totalBytesSent(), 0u);
  EXPECT_EQ(comm.totalMessagesSent(), 0u);
}

TEST(SimComm, PendingCountCountsAllSources) {
  SimComm comm(3);
  comm.send(0, 2, 4, bytes({1}));
  comm.send(1, 2, 4, bytes({2}));
  comm.send(1, 2, 5, bytes({3}));
  EXPECT_EQ(comm.pendingCount(2, 4), 2);
  EXPECT_EQ(comm.pendingCount(2, 5), 1);
}

}  // namespace
}  // namespace tkmc
