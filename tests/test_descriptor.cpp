#include "nnp/descriptor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nnp/dataset.hpp"
#include "nnp/network.hpp"

namespace tkmc {
namespace {

Structure dimer(double r, Species a, Species b) {
  Structure s;
  s.box = {50.0, 50.0, 50.0};
  s.positions = {{10.0, 10.0, 10.0}, {10.0 + r, 10.0, 10.0}};
  s.species = {a, b};
  return s;
}

TEST(Descriptor, DimensionIsPqTimesElements) {
  const Descriptor d(standardPqSets(), 6.5);
  EXPECT_EQ(d.numPq(), 32);
  EXPECT_EQ(d.dim(), 64);
}

TEST(Descriptor, DimerFeaturesLandInNeighborElementBlock) {
  const Descriptor d(standardPqSets(), 6.5);
  const Structure s = dimer(2.5, Species::kFe, Species::kCu);
  const auto f = d.compute(s);
  ASSERT_EQ(f.size(), 2u * 64u);
  // Atom 0 (Fe) sees one Cu neighbour: Cu block populated, Fe block zero.
  for (int k = 0; k < 32; ++k) {
    EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(k)], 0.0);  // Fe block
    EXPECT_NEAR(f[32 + static_cast<std::size_t>(k)],
                FeatureTable::term(2.5, standardPqSets()[static_cast<std::size_t>(k)]),
                1e-15);
  }
  // Atom 1 (Cu) sees one Fe neighbour.
  for (int k = 0; k < 32; ++k) {
    EXPECT_GT(f[64 + static_cast<std::size_t>(k)], 0.0);   // Fe block
    EXPECT_DOUBLE_EQ(f[64 + 32 + static_cast<std::size_t>(k)], 0.0);
  }
}

TEST(Descriptor, NeighborsBeyondCutoffIgnored) {
  const Descriptor d(standardPqSets(), 6.5);
  const auto f = d.compute(dimer(6.6, Species::kFe, Species::kFe));
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Descriptor, FeaturesAdditiveOverNeighbors) {
  const Descriptor d(standardPqSets(), 6.5);
  Structure s = dimer(2.5, Species::kFe, Species::kFe);
  s.positions.push_back({10.0 - 3.0, 10.0, 10.0});
  s.species.push_back(Species::kFe);
  const auto f = d.compute(s);
  for (int k = 0; k < 32; ++k) {
    const double expected =
        FeatureTable::term(2.5, standardPqSets()[static_cast<std::size_t>(k)]) +
        FeatureTable::term(3.0, standardPqSets()[static_cast<std::size_t>(k)]);
    EXPECT_NEAR(f[static_cast<std::size_t>(k)], expected, 1e-14);
  }
}

TEST(Descriptor, TermDerivativeMatchesFiniteDifference) {
  const Descriptor d(standardPqSets(), 6.5);
  const double h = 1e-6;
  for (int k : {0, 7, 15, 31}) {
    for (double r : {2.0, 2.5, 3.7, 5.5}) {
      const PqSet pq = standardPqSets()[static_cast<std::size_t>(k)];
      const double fd =
          (FeatureTable::term(r + h, pq) - FeatureTable::term(r - h, pq)) /
          (2 * h);
      EXPECT_NEAR(d.termDerivative(r, k), fd, 1e-7) << "k=" << k << " r=" << r;
    }
  }
}

TEST(Descriptor, NnpForcesMatchFiniteDifferenceOfNetworkEnergy) {
  const Descriptor d(standardPqSets(), 6.5);
  Network net({64, 8, 1});
  Rng rng(17);
  net.initHe(rng);
  DatasetConfig cfg;
  cfg.cellsX = cfg.cellsY = cfg.cellsZ = 2;
  Rng srng(23);
  Structure s = randomCell(cfg, srng);

  auto totalEnergy = [&](const Structure& st) {
    const auto f = d.compute(st);
    double e = 0.0;
    for (std::size_t a = 0; a < st.size(); ++a)
      e += net.atomEnergy({f.data() + a * static_cast<std::size_t>(d.dim()),
                           static_cast<std::size_t>(d.dim())});
    return e;
  };

  const auto f = d.compute(s);
  std::vector<double> grads(f.size());
  for (std::size_t a = 0; a < s.size(); ++a)
    net.inputGradient({f.data() + a * static_cast<std::size_t>(d.dim()),
                       static_cast<std::size_t>(d.dim())},
                      {grads.data() + a * static_cast<std::size_t>(d.dim()),
                       static_cast<std::size_t>(d.dim())});
  const auto forces = d.forces(s, grads);

  const double h = 1e-5;
  for (std::size_t atom : {std::size_t{0}, s.size() / 3}) {
    for (int axis = 0; axis < 3; ++axis) {
      double* coord = axis == 0 ? &s.positions[atom].x
                    : axis == 1 ? &s.positions[atom].y
                                : &s.positions[atom].z;
      const double orig = *coord;
      *coord = orig + h;
      const double ep = totalEnergy(s);
      *coord = orig - h;
      const double em = totalEnergy(s);
      *coord = orig;
      const double analytic = axis == 0 ? forces[atom].x
                            : axis == 1 ? forces[atom].y
                                        : forces[atom].z;
      EXPECT_NEAR(analytic, -(ep - em) / (2 * h), 2e-4)
          << "atom " << atom << " axis " << axis;
    }
  }
}

}  // namespace
}  // namespace tkmc
