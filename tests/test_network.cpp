#include "nnp/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace tkmc {
namespace {

Network smallNet(std::uint64_t seed = 1) {
  Network n({4, 8, 8, 1});
  Rng rng(seed);
  n.initHe(rng);
  return n;
}

TEST(Network, ShapeAccessors) {
  const Network n({64, 128, 128, 128, 64, 1});
  EXPECT_EQ(n.inputDim(), 64);
  EXPECT_EQ(n.numLayers(), 5);
  EXPECT_EQ(n.maxWidth(), 128);
  EXPECT_EQ(n.layer(0).in, 64);
  EXPECT_EQ(n.layer(0).out, 128);
  EXPECT_EQ(n.layer(4).out, 1);
}

TEST(Network, ZeroWeightsGiveZeroEnergy) {
  const Network n({4, 8, 1});
  const std::vector<double> f{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(n.atomEnergy(f), 0.0);
}

TEST(Network, BiasOnlyNetworkIsConstant) {
  Network n({4, 1});
  n.layer(0).bias[0] = 2.5;
  const std::vector<double> a{0.0, 0.0, 0.0, 0.0};
  const std::vector<double> b{9.0, -3.0, 1.0, 7.0};
  EXPECT_DOUBLE_EQ(n.atomEnergy(a), 2.5);
  EXPECT_DOUBLE_EQ(n.atomEnergy(b), 2.5);
}

TEST(Network, SingleLinearLayerComputesDotProduct) {
  Network n({3, 1});
  n.layer(0).weights = {1.0, -2.0, 0.5};
  n.layer(0).bias = {0.25};
  const std::vector<double> x{2.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(n.atomEnergy(x), 2.0 - 2.0 + 2.0 + 0.25);
}

TEST(Network, ReluClampsHiddenActivations) {
  // One hidden unit with negative pre-activation must contribute zero.
  Network n({1, 1, 1});
  n.layer(0).weights = {1.0};
  n.layer(0).bias = {0.0};
  n.layer(1).weights = {1.0};
  n.layer(1).bias = {0.0};
  EXPECT_DOUBLE_EQ(n.atomEnergy(std::vector<double>{3.0}), 3.0);
  EXPECT_DOUBLE_EQ(n.atomEnergy(std::vector<double>{-3.0}), 0.0);
}

TEST(Network, ForwardBatchMatchesAtomEnergy) {
  const Network n = smallNet();
  std::vector<double> features;
  Rng rng(4);
  const int atoms = 17;
  for (int i = 0; i < atoms * n.inputDim(); ++i)
    features.push_back(rng.uniform() * 4 - 2);
  std::vector<double> batch(static_cast<std::size_t>(atoms));
  n.forwardBatch(features.data(), atoms, batch.data());
  for (int i = 0; i < atoms; ++i) {
    const double single = n.atomEnergy(
        {features.data() + static_cast<std::size_t>(i) * n.inputDim(),
         static_cast<std::size_t>(n.inputDim())});
    EXPECT_DOUBLE_EQ(batch[static_cast<std::size_t>(i)], single);
  }
}

TEST(Network, StateEnergyIsSumOfAtomEnergies) {
  const Network n = smallNet();
  std::vector<double> features;
  Rng rng(4);
  const int atoms = 11;
  for (int i = 0; i < atoms * n.inputDim(); ++i)
    features.push_back(rng.uniform());
  std::vector<double> batch(static_cast<std::size_t>(atoms));
  n.forwardBatch(features.data(), atoms, batch.data());
  double sum = 0.0;
  for (double e : batch) sum += e;
  EXPECT_NEAR(n.stateEnergy(features.data(), atoms), sum, 1e-12);
}

TEST(Network, InputTransformShiftsAndScales) {
  Network n({2, 1});
  n.layer(0).weights = {1.0, 1.0};
  n.setInputTransform({1.0, 2.0}, {2.0, 0.5});
  // y = (x0-1)*2 + (x1-2)*0.5
  EXPECT_DOUBLE_EQ(n.atomEnergy(std::vector<double>{2.0, 4.0}), 2.0 + 1.0);
}

TEST(Network, InputGradientMatchesFiniteDifference) {
  Network n = smallNet(9);
  n.setInputTransform({0.1, -0.2, 0.3, 0.0}, {1.5, 0.7, 1.0, 2.0});
  std::vector<double> x{0.4, -0.9, 1.3, 0.2};
  std::vector<double> grad(4);
  n.inputGradient(x, grad);
  const double h = 1e-6;
  for (int c = 0; c < 4; ++c) {
    const double orig = x[static_cast<std::size_t>(c)];
    x[static_cast<std::size_t>(c)] = orig + h;
    const double ep = n.atomEnergy(x);
    x[static_cast<std::size_t>(c)] = orig - h;
    const double em = n.atomEnergy(x);
    x[static_cast<std::size_t>(c)] = orig;
    EXPECT_NEAR(grad[static_cast<std::size_t>(c)], (ep - em) / (2 * h), 1e-5);
  }
}

TEST(Network, FoldedSnapshotMatchesDoubleForward) {
  Network n({4, 8, 1});
  Rng rng(11);
  n.initHe(rng);
  n.setInputTransform({0.5, 1.0, -0.5, 2.0}, {2.0, 1.0, 0.25, 0.5});
  const auto snap = n.foldedSnapshot();
  // Evaluate the snapshot manually in double to isolate the fold algebra.
  std::vector<double> x{1.0, -2.0, 4.0, 0.5};
  std::vector<double> cur(x);
  std::vector<double> nxt;
  for (std::size_t li = 0; li < snap.weights.size(); ++li) {
    const int in = snap.channels[li];
    const int out = snap.channels[li + 1];
    nxt.assign(static_cast<std::size_t>(out), 0.0);
    for (int o = 0; o < out; ++o) {
      double acc = snap.biases[li][static_cast<std::size_t>(o)];
      for (int c = 0; c < in; ++c)
        acc += static_cast<double>(
                   snap.weights[li][static_cast<std::size_t>(o) * in + c]) *
               cur[static_cast<std::size_t>(c)];
      nxt[static_cast<std::size_t>(o)] =
          li + 1 == snap.weights.size() ? acc : std::max(acc, 0.0);
    }
    cur = nxt;
  }
  EXPECT_NEAR(cur[0], n.atomEnergy(x), 1e-4);  // float casts in the fold
}

// Architecture sweep: gradients must match finite differences for any
// channel layout (catches shape bookkeeping bugs in backprop).
class NetworkShapeSweep
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(NetworkShapeSweep, InputGradientMatchesFiniteDifference) {
  Network n(GetParam());
  Rng rng(31);
  n.initHe(rng);
  std::vector<double> x(static_cast<std::size_t>(n.inputDim()));
  Rng xr(32);
  for (double& v : x) v = xr.uniform() * 2 - 1;
  std::vector<double> grad(x.size());
  n.inputGradient(x, grad);
  const double h = 1e-6;
  for (int c = 0; c < n.inputDim(); c += std::max(1, n.inputDim() / 5)) {
    const double orig = x[static_cast<std::size_t>(c)];
    x[static_cast<std::size_t>(c)] = orig + h;
    const double ep = n.atomEnergy(x);
    x[static_cast<std::size_t>(c)] = orig - h;
    const double em = n.atomEnergy(x);
    x[static_cast<std::size_t>(c)] = orig;
    EXPECT_NEAR(grad[static_cast<std::size_t>(c)], (ep - em) / (2 * h), 1e-5)
        << "channel " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NetworkShapeSweep,
    ::testing::Values(std::vector<int>{2, 1}, std::vector<int>{3, 5, 1},
                      std::vector<int>{8, 16, 16, 1},
                      std::vector<int>{64, 128, 128, 128, 64, 1},
                      std::vector<int>{5, 3, 7, 1}));

TEST(Network, HeInitIsDeterministicPerSeed) {
  Network a({4, 8, 1}), b({4, 8, 1});
  Rng ra(3), rb(3);
  a.initHe(ra);
  b.initHe(rb);
  EXPECT_EQ(a.layer(0).weights, b.layer(0).weights);
}

}  // namespace
}  // namespace tkmc
