#include <gtest/gtest.h>

#include <vector>

#include "common/retry.hpp"

namespace tkmc {
namespace {

/// Fake clock: accumulates the delays a schedule hands out, so the
/// backoff curve is testable without sleeping.
struct FakeClock {
  double nowMs = 0.0;
  void advance(double ms) { nowMs += ms; }
};

RetryPolicy noJitter(int attempts) {
  RetryPolicy p;
  p.maxAttempts = attempts;
  p.baseDelayMs = 2.0;
  p.multiplier = 2.0;
  p.maxDelayMs = 50.0;
  p.jitterFrac = 0.0;
  return p;
}

TEST(Retry, ZeroJitterFollowsTheCappedExponentialCurve) {
  RetrySchedule schedule(noJitter(7));
  FakeClock clock;
  std::vector<double> delays;
  while (!schedule.exhausted()) {
    const double d = schedule.recordFailure();
    if (!schedule.exhausted()) {
      delays.push_back(d);
      clock.advance(d);
    }
  }
  // 7 attempts = 6 waits: 2, 4, 8, 16, 32, then capped at 50.
  EXPECT_EQ(delays, (std::vector<double>{2, 4, 8, 16, 32, 50}));
  EXPECT_DOUBLE_EQ(clock.nowMs, 112.0);
  EXPECT_EQ(schedule.failures(), 7);
}

TEST(Retry, JitterStaysWithinTheConfiguredBand) {
  RetryPolicy p = noJitter(40);
  p.jitterFrac = 0.25;
  RetrySchedule schedule(p, /*jitterSeed=*/42);
  bool sawOffNominal = false;
  for (int i = 0; i < 30; ++i) {
    double nominal = p.baseDelayMs;
    for (int k = 0; k < i; ++k)
      nominal = std::min(nominal * p.multiplier, p.maxDelayMs);
    const double d = schedule.recordFailure();
    EXPECT_GE(d, nominal * (1.0 - p.jitterFrac)) << "failure " << i;
    EXPECT_LE(d, nominal * (1.0 + p.jitterFrac)) << "failure " << i;
    if (d != nominal) sawOffNominal = true;
  }
  EXPECT_TRUE(sawOffNominal);  // the jitter stream actually perturbs
}

TEST(Retry, SameSeedIsDeterministicAcrossSchedules) {
  RetryPolicy p = noJitter(10);
  p.jitterFrac = 0.25;
  RetrySchedule a(p, 7), b(p, 7), c(p, 8);
  bool seedsDiverge = false;
  for (int i = 0; i < 9; ++i) {
    const double da = a.recordFailure();
    EXPECT_DOUBLE_EQ(da, b.recordFailure()) << "failure " << i;
    if (da != c.recordFailure()) seedsDiverge = true;
  }
  EXPECT_TRUE(seedsDiverge);
}

TEST(Retry, GivesUpAfterExactlyTheAttemptBudget) {
  RetrySchedule schedule(noJitter(3));
  EXPECT_FALSE(schedule.exhausted());
  schedule.recordFailure();
  EXPECT_FALSE(schedule.exhausted());
  schedule.recordFailure();
  EXPECT_FALSE(schedule.exhausted());
  schedule.recordFailure();
  EXPECT_TRUE(schedule.exhausted());

  // A one-shot policy gives up on the first failure — the ghost ARQ
  // uses exactly this bound with zero delays.
  RetryPolicy oneShot = noJitter(1);
  oneShot.baseDelayMs = 0.0;
  oneShot.maxDelayMs = 0.0;
  RetrySchedule arq(oneShot);
  EXPECT_FALSE(arq.exhausted());
  EXPECT_DOUBLE_EQ(arq.recordFailure(), 0.0);
  EXPECT_TRUE(arq.exhausted());
}

TEST(Retry, TotalBackoffIsBoundedByTheCap) {
  RetryPolicy p = noJitter(50);
  p.jitterFrac = 0.25;
  RetrySchedule schedule(p, 3);
  FakeClock clock;
  while (!schedule.exhausted()) clock.advance(schedule.recordFailure());
  // Every wait is at most (1 + jitter) * maxDelayMs, so a dead remote
  // costs bounded wall time no matter the budget.
  EXPECT_LE(clock.nowMs, 50 * (1.0 + p.jitterFrac) * p.maxDelayMs);
  EXPECT_GT(clock.nowMs, 0.0);
}

}  // namespace
}  // namespace tkmc
