#include "openkmc/openkmc_engine.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

LatticeState makeState(std::uint64_t seed, int cells = 12, int vacancies = 2) {
  LatticeState state(BccLattice(cells, cells, cells, 2.87));
  Rng rng(seed);
  state.randomAlloy(0.12, vacancies, rng);
  return state;
}

TEST(OpenKmcEngine, RunsAndConservesSpecies) {
  LatticeState state = makeState(1);
  const auto fe = state.countSpecies(Species::kFe);
  const auto cu = state.countSpecies(Species::kCu);
  const EamPotential eam(kCutoff);
  OpenKmcEngine engine(state, eam, {});
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(engine.step().advanced);
  EXPECT_EQ(state.countSpecies(Species::kFe), fe);
  EXPECT_EQ(state.countSpecies(Species::kCu), cu);
  EXPECT_EQ(state.countSpecies(Species::kVacancy), 2);
}

TEST(OpenKmcEngine, CachedPropertiesStayCoherent) {
  // The cache-all arrays must always match a from-scratch recomputation.
  LatticeState state = makeState(2);
  const EamPotential eam(kCutoff);
  OpenKmcEngine engine(state, eam, {});
  const BccLattice& lat = state.lattice();
  const auto offsets = lat.offsetsWithinCutoff(kCutoff);
  auto freshEnergy = [&](BccLattice::SiteId id) {
    const Vec3i p = lat.coordinate(id);
    const Species self = state.species(id);
    if (self == Species::kVacancy) return 0.0;
    std::vector<std::pair<Species, double>> nb;
    for (const Vec3i& d : offsets)
      nb.emplace_back(state.speciesAt(p + d), lat.offsetDistance(d));
    return eam.atomEnergy(self, nb);
  };
  for (int block = 0; block < 5; ++block) {
    for (int i = 0; i < 20; ++i) engine.step();
    Rng rng(1000 + block);
    for (int probe = 0; probe < 30; ++probe) {
      const auto id = static_cast<BccLattice::SiteId>(
          rng.uniformBelow(static_cast<std::uint64_t>(lat.siteCount())));
      ASSERT_NEAR(engine.cachedAtomEnergy(id), freshEnergy(id), 1e-10)
          << "site " << id << " after block " << block;
    }
  }
}

TEST(OpenKmcEngine, ArrayBytesGrowWithTheBox) {
  const EamPotential eam(kCutoff);
  LatticeState small = makeState(3, 10);
  LatticeState large = makeState(4, 14);
  OpenKmcEngine a(small, eam, {});
  OpenKmcEngine b(large, eam, {});
  EXPECT_GT(b.arrayBytes(), a.arrayBytes());
  // POS_ID over the doubled grid wastes 3/4 of its slots (Fig. 5), so the
  // footprint is dominated by box volume, not atom count:
  // (2L)^3 * 8 bytes for POS_ID + 2 * L^3 * 2 * 8 for E_V/E_R.
  const std::size_t cells = 10 * 10 * 10;
  const std::size_t posIdBytes = 8 * cells * 8;       // (2L)^3 slots x 8 B
  const std::size_t propertyBytes = 2 * 2 * cells * 8;  // E_V + E_R doubles
  EXPECT_EQ(a.arrayBytes(), posIdBytes + propertyBytes);
}

TEST(OpenKmcEngine, DeterministicForSameSeed) {
  LatticeState a = makeState(5), b = makeState(5);
  const EamPotential eam(kCutoff);
  OpenKmcEngine::Config cfg;
  cfg.seed = 44;
  OpenKmcEngine ea(a, eam, cfg), eb(b, eam, cfg);
  for (int i = 0; i < 60; ++i) {
    const auto ra = ea.step();
    const auto rb = eb.step();
    ASSERT_EQ(ra.from, rb.from);
    ASSERT_EQ(ra.to, rb.to);
  }
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(OpenKmcEngine, RunHonorsLimits) {
  LatticeState state = makeState(6);
  const EamPotential eam(kCutoff);
  OpenKmcEngine::Config cfg;
  cfg.maxSteps = 15;
  OpenKmcEngine engine(state, eam, cfg);
  EXPECT_EQ(engine.run(), 15u);
  EXPECT_GT(engine.time(), 0.0);
}

TEST(OpenKmcEngine, TimeIncrementsArePositive) {
  LatticeState state = makeState(7);
  const EamPotential eam(kCutoff);
  OpenKmcEngine engine(state, eam, {});
  double last = 0.0;
  for (int i = 0; i < 50; ++i) {
    engine.step();
    EXPECT_GT(engine.time(), last);
    last = engine.time();
  }
}

}  // namespace
}  // namespace tkmc
