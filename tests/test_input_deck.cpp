#include "core/input_deck.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace tkmc {
namespace {

InputDeck parse(const std::string& text) {
  std::stringstream ss(text);
  return InputDeck::parse(ss);
}

TEST(InputDeck, EmptyDeckYieldsDefaults) {
  const InputDeck deck = parse("");
  const SimulationConfig cfg = deck.simulationConfig();
  EXPECT_EQ(cfg.cells, 20);
  EXPECT_DOUBLE_EQ(cfg.cutoff, kDefaultCutoff);
  EXPECT_EQ(cfg.potential, SimulationConfig::Potential::kNnp);
  EXPECT_DOUBLE_EQ(deck.tEnd(), 1e-6);
  EXPECT_TRUE(deck.dumpPath().empty());
}

TEST(InputDeck, ParsesAllCoreKeys) {
  const InputDeck deck = parse(R"(
cells 14
lattice_constant 2.9
cutoff 4.0
cu_fraction 0.05
vacancy_count 7
temperature 673
seed 99
potential eam
use_cache off
use_tree off
t_end 2e-5
max_steps 5000
report_interval 250
dump_xyz out.xyz
dump_interval 100
)");
  const SimulationConfig cfg = deck.simulationConfig();
  EXPECT_EQ(cfg.cells, 14);
  EXPECT_DOUBLE_EQ(cfg.latticeConstant, 2.9);
  EXPECT_DOUBLE_EQ(cfg.cutoff, 4.0);
  EXPECT_DOUBLE_EQ(cfg.cuFraction, 0.05);
  EXPECT_EQ(cfg.vacancyCount, 7);
  EXPECT_DOUBLE_EQ(cfg.temperature, 673.0);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.potential, SimulationConfig::Potential::kEam);
  EXPECT_FALSE(cfg.useVacancyCache);
  EXPECT_FALSE(cfg.useTree);
  EXPECT_DOUBLE_EQ(deck.tEnd(), 2e-5);
  EXPECT_EQ(deck.maxSteps(), 5000u);
  EXPECT_EQ(deck.reportInterval(), 250u);
  EXPECT_EQ(deck.dumpPath(), "out.xyz");
  EXPECT_EQ(deck.dumpInterval(), 100u);
}

TEST(InputDeck, CommentsAndBlankLinesIgnored) {
  const InputDeck deck = parse(
      "# full-line comment\n"
      "\n"
      "cells 10   # trailing comment\n"
      "   \t \n");
  EXPECT_EQ(deck.simulationConfig().cells, 10);
}

TEST(InputDeck, ChannelsAreCommaSeparated) {
  const InputDeck deck = parse("channels 64,16,8,1\n");
  EXPECT_EQ(deck.simulationConfig().channels,
            (std::vector<int>{64, 16, 8, 1}));
}

TEST(InputDeck, ParsesFailStopKeysAndFlatRankGrids) {
  const InputDeck deck = parse(R"(
mode parallel
rank_grid 2,2,1
checkpoint_dir ckpt
checkpoint_cadence 3
heartbeat_interval_ms 2.5
heartbeat_timeout_ms 10
)");
  EXPECT_TRUE(deck.parallelMode());
  EXPECT_EQ(deck.rankGrid(), (Vec3i{2, 2, 1}));  // flat grids are legal
  EXPECT_EQ(deck.checkpointDir(), "ckpt");
  EXPECT_EQ(deck.checkpointCadence(), 3);
  EXPECT_DOUBLE_EQ(deck.heartbeatIntervalMs(), 2.5);
  EXPECT_DOUBLE_EQ(deck.heartbeatTimeoutMs(), 10.0);

  const InputDeck defaults = parse("");
  EXPECT_TRUE(defaults.checkpointDir().empty());
  EXPECT_EQ(defaults.checkpointCadence(), 1);
  EXPECT_DOUBLE_EQ(defaults.heartbeatIntervalMs(), 5.0);
  EXPECT_DOUBLE_EQ(defaults.heartbeatTimeoutMs(), 0.0);  // detector off

  EXPECT_THROW(parse("rank_grid 1,1,1"), Error);    // one rank: use serial
  EXPECT_THROW(parse("rank_grid 2,0,2"), Error);
  EXPECT_THROW(parse("checkpoint_cadence 0"), Error);
  EXPECT_THROW(parse("heartbeat_interval_ms 0"), Error);
  EXPECT_THROW(parse("heartbeat_timeout_ms -1"), Error);
}

TEST(InputDeck, ParsesDeltaCheckpointAndSpareRankKeys) {
  const InputDeck deck = parse(R"(
mode parallel
checkpoint_dir ckpt
checkpoint_mode delta
max_delta_chain 4
spare_ranks 2
)");
  EXPECT_TRUE(deck.deltaCheckpoints());
  EXPECT_EQ(deck.maxDeltaChain(), 4);
  EXPECT_EQ(deck.spareRanks(), 2);

  const InputDeck defaults = parse("");
  EXPECT_FALSE(defaults.deltaCheckpoints());  // full epochs by default
  EXPECT_EQ(defaults.maxDeltaChain(), 8);
  EXPECT_EQ(defaults.spareRanks(), 0);
  EXPECT_FALSE(parse("checkpoint_mode full").deltaCheckpoints());

  EXPECT_THROW(parse("checkpoint_mode incremental"), Error);
  EXPECT_THROW(parse("max_delta_chain 0"), Error);
  EXPECT_THROW(parse("spare_ranks -1"), Error);
}

TEST(InputDeck, UnknownKeyThrows) {
  EXPECT_THROW(parse("celz 10\n"), Error);
}

TEST(InputDeck, DuplicateKeyThrows) {
  EXPECT_THROW(parse("cells 10\ncells 12\n"), Error);
}

TEST(InputDeck, MissingValueThrows) {
  EXPECT_THROW(parse("cells\n"), Error);
}

TEST(InputDeck, BadNumberThrows) {
  EXPECT_THROW(parse("temperature warm\n"), Error);
  EXPECT_THROW(parse("cells 10.5x\n"), Error);
}

TEST(InputDeck, InvalidValuesRejected) {
  EXPECT_THROW(parse("cells -3\n"), Error);
  EXPECT_THROW(parse("temperature -10\n"), Error);
  EXPECT_THROW(parse("cu_fraction 1.5\n"), Error);
  EXPECT_THROW(parse("potential dft\n"), Error);
  EXPECT_THROW(parse("use_cache maybe\n"), Error);
}

TEST(InputDeck, SwitchAliases) {
  EXPECT_TRUE(parse("use_cache on\n").simulationConfig().useVacancyCache);
  EXPECT_TRUE(parse("use_cache true\n").simulationConfig().useVacancyCache);
  EXPECT_TRUE(parse("use_cache 1\n").simulationConfig().useVacancyCache);
  EXPECT_FALSE(parse("use_cache off\n").simulationConfig().useVacancyCache);
  EXPECT_FALSE(parse("use_cache false\n").simulationConfig().useVacancyCache);
}

TEST(InputDeck, HasAndRawValue) {
  const InputDeck deck = parse("model_path /tmp/model.txt\n");
  EXPECT_TRUE(deck.has("model_path"));
  EXPECT_FALSE(deck.has("cells"));
  EXPECT_EQ(deck.rawValue("model_path"), "/tmp/model.txt");
  EXPECT_EQ(deck.rawValue("cells"), "");
}

TEST(InputDeck, MissingFileThrows) {
  EXPECT_THROW(InputDeck::parseFile("/no/such/deck.tkmc"), Error);
}

TEST(InputDeck, CheckpointKeys) {
  const InputDeck deck = parse(
      "checkpoint_write out.chk\ncheckpoint_interval 500\n"
      "checkpoint_read in.chk\n");
  EXPECT_EQ(deck.checkpointWritePath(), "out.chk");
  EXPECT_EQ(deck.checkpointInterval(), 500u);
  EXPECT_EQ(deck.checkpointReadPath(), "in.chk");
  EXPECT_THROW(parse("checkpoint_interval 0\n"), Error);
}

TEST(InputDeck, DeckDrivesARunnableSimulation) {
  const InputDeck deck = parse(
      "cells 10\ncutoff 4.0\nvacancy_count 2\npotential eam\nmax_steps 20\n");
  Simulation sim(deck.simulationConfig());
  EXPECT_EQ(sim.run(deck.tEnd(), deck.maxSteps()), 20u);
}

}  // namespace
}  // namespace tkmc
