#include "common/memory_tracker.hpp"

#include <gtest/gtest.h>

namespace tkmc {
namespace {

TEST(MemoryTracker, SetAndAddAccumulate) {
  MemoryTracker t;
  t.set("lattice", 1000);
  t.add("lattice", 24);
  t.add("cache", 512);
  EXPECT_EQ(t.bytes("lattice"), 1024u);
  EXPECT_EQ(t.bytes("cache"), 512u);
  EXPECT_EQ(t.bytes("missing"), 0u);
  EXPECT_EQ(t.totalBytes(), 1536u);
}

TEST(MemoryTracker, SetOverwrites) {
  MemoryTracker t;
  t.set("x", 100);
  t.set("x", 7);
  EXPECT_EQ(t.bytes("x"), 7u);
}

TEST(MemoryTracker, NamesAreSorted) {
  MemoryTracker t;
  t.set("zeta", 1);
  t.set("alpha", 2);
  t.set("mid", 3);
  const auto names = t.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[2], "zeta");
}

TEST(MemoryTracker, ClearEmpties) {
  MemoryTracker t;
  t.set("a", 5);
  t.clear();
  EXPECT_EQ(t.totalBytes(), 0u);
  EXPECT_TRUE(t.names().empty());
}

TEST(MemoryTracker, ToMiBFormatsTwoDecimals) {
  EXPECT_EQ(MemoryTracker::toMiB(1024 * 1024), "1.00");
  EXPECT_EQ(MemoryTracker::toMiB(1536 * 1024), "1.50");
  EXPECT_EQ(MemoryTracker::toMiB(0), "0.00");
}

}  // namespace
}  // namespace tkmc
