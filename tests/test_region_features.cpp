#include "tabulation/region_features.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tkmc {
namespace {

class RegionFeaturesTest : public ::testing::Test {
 protected:
  RegionFeaturesTest()
      : cet_(2.87, 4.0), net_(cet_),
        table_(net_.distances(), standardPqSets()),
        lattice_(12, 12, 12, 2.87), state_(lattice_) {
    Rng rng(21);
    state_.randomAlloy(0.2, 0, rng);
    state_.setSpeciesAt(center_, Species::kVacancy);
  }

  Cet cet_;
  Net net_;
  FeatureTable table_;
  BccLattice lattice_;
  LatticeState state_;
  Vec3i center_{6, 6, 6};
};

TEST_F(RegionFeaturesTest, MatchesBruteForceAccumulation) {
  const RegionFeatures rf(net_, table_);
  Vet vet = Vet::gather(cet_, state_, center_);
  std::vector<double> fast;
  rf.compute(vet, fast);
  const int d = rf.dim();
  ASSERT_EQ(fast.size(), static_cast<std::size_t>(cet_.nRegion()) * d);
  // Brute force: per region site, sum table terms over lattice neighbours.
  const auto offsets = lattice_.offsetsWithinCutoff(4.0);
  for (int site = 0; site < cet_.nRegion(); site += 7) {
    std::vector<double> expected(static_cast<std::size_t>(d), 0.0);
    const Vec3i abs = center_ + cet_.site(site);
    for (const Vec3i& off : offsets) {
      const Species sp = state_.speciesAt(abs + off);
      if (sp == Species::kVacancy) continue;
      // Find the distance index.
      const double r = lattice_.offsetDistance(off);
      int distIndex = -1;
      for (std::size_t k = 0; k < net_.distances().size(); ++k)
        if (std::abs(net_.distances()[k] - r) < 1e-9)
          distIndex = static_cast<int>(k);
      ASSERT_GE(distIndex, 0);
      for (int k = 0; k < table_.numPq(); ++k)
        expected[static_cast<std::size_t>(static_cast<int>(sp)) * table_.numPq() +
                 k] += table_.value(distIndex, k);
    }
    for (int c = 0; c < d; ++c)
      EXPECT_NEAR(fast[static_cast<std::size_t>(site) * d + c],
                  expected[static_cast<std::size_t>(c)], 1e-12);
  }
}

TEST_F(RegionFeaturesTest, VacancyNeighborsContributeNothing) {
  const RegionFeatures rf(net_, table_);
  Vet vet = Vet::gather(cet_, state_, center_);
  std::vector<double> before;
  rf.compute(vet, before);
  // Turning a neighbour of site 0 into a vacancy must reduce (or keep)
  // every component of site 0's features.
  const int nbId = net_.neighbors(0)[0].siteId;
  vet.set(nbId, Species::kVacancy);
  std::vector<double> after;
  rf.compute(vet, after);
  for (int c = 0; c < rf.dim(); ++c)
    EXPECT_LE(after[static_cast<std::size_t>(c)],
              before[static_cast<std::size_t>(c)] + 1e-15);
}

TEST_F(RegionFeaturesTest, ComputeStatesRestoresVet) {
  const RegionFeatures rf(net_, table_);
  Vet vet = Vet::gather(cet_, state_, center_);
  const std::vector<Species> snapshot = vet.data();
  std::vector<double> out;
  rf.computeStates(vet, kNumJumpDirections, out);
  EXPECT_EQ(vet.data(), snapshot);
}

TEST_F(RegionFeaturesTest, StateZeroEqualsPlainCompute) {
  const RegionFeatures rf(net_, table_);
  Vet vet = Vet::gather(cet_, state_, center_);
  std::vector<double> states, plain;
  rf.computeStates(vet, kNumJumpDirections, states);
  rf.compute(vet, plain);
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_DOUBLE_EQ(states[i], plain[i]);
}

TEST_F(RegionFeaturesTest, FinalStateEqualsComputeOnSwappedVet) {
  const RegionFeatures rf(net_, table_);
  Vet vet = Vet::gather(cet_, state_, center_);
  std::vector<double> states;
  rf.computeStates(vet, kNumJumpDirections, states);
  const std::size_t stride = static_cast<std::size_t>(cet_.nRegion()) * rf.dim();
  for (int k = 0; k < kNumJumpDirections; ++k) {
    Vet swapped = vet;
    swapped.swap(0, Cet::jumpTargetId(k));
    std::vector<double> expected;
    rf.compute(swapped, expected);
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_DOUBLE_EQ(states[stride * (1 + static_cast<std::size_t>(k)) + i],
                       expected[i])
          << "state " << k;
  }
}

TEST_F(RegionFeaturesTest, DirectExpEvaluationIsBitIdenticalToTable) {
  // The Eq. 5 vs Eq. 6 ablation: evaluating exp(-(r/p)^q) on the fly
  // must give bit-equal features (the table stores exactly those values
  // and the accumulation order is shared).
  const RegionFeatures rf(net_, table_);
  const Vet vet = Vet::gather(cet_, state_, center_);
  std::vector<double> tabulated, direct;
  rf.compute(vet, tabulated);
  rf.computeDirect(vet, net_.distances(), standardPqSets(), direct);
  ASSERT_EQ(tabulated.size(), direct.size());
  for (std::size_t i = 0; i < tabulated.size(); ++i)
    ASSERT_EQ(tabulated[i], direct[i]);
}

TEST_F(RegionFeaturesTest, FeaturesDependOnlyOnVetContents) {
  const RegionFeatures rf(net_, table_);
  Vet a = Vet::gather(cet_, state_, center_);
  Vet b = a;
  std::vector<double> fa, fb;
  rf.compute(a, fa);
  rf.compute(b, fb);
  EXPECT_EQ(fa, fb);
}

}  // namespace
}  // namespace tkmc
