#include "tabulation/feature_table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tkmc {
namespace {

TEST(PqSets, PaperHyperparameterSchedule) {
  const auto sets = standardPqSets();
  ASSERT_EQ(sets.size(), 32u);  // Sec. 4.1.1: 32 (p,q) sets
  EXPECT_NEAR(sets.front().p, 4.2, 1e-12);
  EXPECT_NEAR(sets.front().q, 1.85, 1e-12);
  EXPECT_NEAR(sets.back().p, 1.1, 1e-9);
  EXPECT_NEAR(sets.back().q, 3.4, 1e-9);
  for (std::size_t i = 1; i < sets.size(); ++i) {
    EXPECT_NEAR(sets[i].p - sets[i - 1].p, -0.1, 1e-9);
    EXPECT_NEAR(sets[i].q - sets[i - 1].q, 0.05, 1e-9);
  }
}

TEST(FeatureTable, TermMatchesClosedForm) {
  const PqSet pq{3.0, 2.0};
  EXPECT_NEAR(FeatureTable::term(3.0, pq), std::exp(-1.0), 1e-15);
  EXPECT_NEAR(FeatureTable::term(6.0, pq), std::exp(-4.0), 1e-15);
}

TEST(FeatureTable, TableReproducesTermAtKnots) {
  const std::vector<double> distances = {2.485, 2.87, 4.06, 6.4};
  const auto pq = standardPqSets();
  const FeatureTable table(distances, pq);
  ASSERT_EQ(table.numDistances(), 4);
  ASSERT_EQ(table.numPq(), 32);
  for (int d = 0; d < table.numDistances(); ++d)
    for (int k = 0; k < table.numPq(); ++k)
      EXPECT_DOUBLE_EQ(table.value(d, k),
                       FeatureTable::term(distances[static_cast<std::size_t>(d)],
                                          pq[static_cast<std::size_t>(k)]));
}

TEST(FeatureTable, RowIsContiguousPqOrder) {
  const std::vector<double> distances = {2.485, 4.06};
  const auto pq = standardPqSets();
  const FeatureTable table(distances, pq);
  const double* row = table.row(1);
  for (int k = 0; k < table.numPq(); ++k)
    EXPECT_DOUBLE_EQ(row[k], table.value(1, k));
}

TEST(FeatureTable, TermDecreasesWithDistance) {
  const auto pq = standardPqSets();
  for (const PqSet& set : pq) {
    double prev = FeatureTable::term(1.5, set);
    for (double r = 2.0; r < 7.0; r += 0.5) {
      const double cur = FeatureTable::term(r, set);
      EXPECT_LT(cur, prev);
      prev = cur;
    }
  }
}

TEST(FeatureTable, ValuesAreInUnitInterval) {
  const std::vector<double> distances = {2.485, 2.87, 4.06, 4.73, 5.74, 6.4};
  const FeatureTable table(distances, standardPqSets());
  for (int d = 0; d < table.numDistances(); ++d)
    for (int k = 0; k < table.numPq(); ++k) {
      EXPECT_GT(table.value(d, k), 0.0);
      EXPECT_LT(table.value(d, k), 1.0);
    }
}

TEST(FeatureTable, SizeBytesAccountsAllEntries) {
  const std::vector<double> distances = {2.485, 2.87};
  const FeatureTable table(distances, standardPqSets());
  EXPECT_EQ(table.sizeBytes(), 2u * 32u * sizeof(double));
}

}  // namespace
}  // namespace tkmc
