#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/eam_energy_model.hpp"
#include "parallel/parallel_engine.hpp"

namespace tkmc {
namespace {

namespace tm = telemetry;
using tm::BlackboxEvent;
using tm::BlackboxEventType;
using tm::FlightRecorder;

std::string tempDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

// --- Ring semantics ----------------------------------------------------

TEST(FlightRecorder, RingWrapsKeepingTheNewestCapacityEvents) {
  FlightRecorder rec;
  rec.setCapacity(16);
  rec.configureRanks(1);
  for (int i = 0; i < 40; ++i)
    rec.record(0, BlackboxEventType::kMarker, i, static_cast<std::uint64_t>(i));
  EXPECT_EQ(rec.recordedTotal(0), 40u);
  const std::vector<BlackboxEvent> events = rec.snapshot(0);
  ASSERT_EQ(events.size(), 16u);
  // Oldest-to-newest: the surviving events are 24..39.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 24 + i);
    EXPECT_EQ(events[i].tag, static_cast<std::int32_t>(24 + i));
    EXPECT_EQ(events[i].rank, 0);
  }
}

TEST(FlightRecorder, SnapshotBeforeWrapReturnsOnlyRecordedEvents) {
  FlightRecorder rec;
  rec.setCapacity(16);
  rec.configureRanks(1);
  for (int i = 0; i < 5; ++i) rec.record(0, BlackboxEventType::kCycle, i);
  EXPECT_EQ(rec.recordedTotal(0), 5u);
  EXPECT_EQ(rec.snapshot(0).size(), 5u);
}

TEST(FlightRecorder, LamportStampsAreStrictlyMonotonePerProcess) {
  FlightRecorder rec;
  rec.setCapacity(64);
  rec.configureRanks(2);
  for (int i = 0; i < 30; ++i)
    rec.record(i % 2, BlackboxEventType::kMarker, i);
  for (int rank = 0; rank < 2; ++rank) {
    const auto events = rec.snapshot(rank);
    for (std::size_t i = 1; i < events.size(); ++i)
      EXPECT_GT(events[i].lamport, events[i - 1].lamport) << "rank " << rank;
  }
}

TEST(FlightRecorder, LamportObserveFoldsPeerStampsIn) {
  FlightRecorder rec;
  const std::uint64_t first = rec.lamportTick();
  EXPECT_EQ(first, 1u);
  rec.lamportObserve(100);  // a message from a peer far ahead
  EXPECT_EQ(rec.lamportTick(), 101u);
  rec.lamportObserve(5);  // stale stamps never rewind the clock
  EXPECT_EQ(rec.lamportTick(), 102u);
}

TEST(FlightRecorder, DisabledRecorderAndOutOfRangeRanksAreNoOps) {
  FlightRecorder rec;
  rec.setCapacity(8);
  rec.configureRanks(1);
  rec.setEnabled(false);
  rec.record(0, BlackboxEventType::kMarker);
  EXPECT_EQ(rec.recordedTotal(0), 0u);
  rec.setEnabled(true);
  rec.record(7, BlackboxEventType::kMarker);  // ring 7 was never configured
  rec.record(-1, BlackboxEventType::kMarker);
  EXPECT_EQ(rec.recordedTotal(0), 0u);
  EXPECT_EQ(rec.rankCount(), 1);
}

TEST(FlightRecorder, ConfigureRanksGrowsWithoutDroppingExistingRings) {
  FlightRecorder rec;
  rec.setCapacity(8);
  rec.configureRanks(1);
  rec.record(0, BlackboxEventType::kMarker, 0, 42);
  rec.configureRanks(4);
  EXPECT_EQ(rec.rankCount(), 4);
  ASSERT_EQ(rec.snapshot(0).size(), 1u);
  EXPECT_EQ(rec.snapshot(0)[0].a, 42u);
}

// --- Dump file round-trip ----------------------------------------------

TEST(FlightRecorder, DumpRoundTripsThroughTheBinaryFormat) {
  const std::string dir = tempDir("tkmc_blackbox_roundtrip");
  FlightRecorder rec;
  rec.setCapacity(32);
  rec.configureRanks(2);
  for (int i = 0; i < 50; ++i)
    rec.record(i % 2, BlackboxEventType::kKmcEvent, i % 8,
               static_cast<std::uint64_t>(i), 3);
  rec.setDumpDir(dir);
  EXPECT_EQ(rec.dumpAll(), 2);

  for (int rank = 0; rank < 2; ++rank) {
    const std::string path =
        dir + "/blackbox_rank" + std::to_string(rank) + ".bin";
    const FlightRecorder::Dump dump = FlightRecorder::readDump(path);
    EXPECT_EQ(dump.rank, rank);
    EXPECT_EQ(dump.capacity, 32u);
    EXPECT_EQ(dump.totalRecorded, 25u);
    const auto expected = rec.snapshot(rank);
    ASSERT_EQ(dump.events.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(dump.events[i].lamport, expected[i].lamport);
      EXPECT_EQ(dump.events[i].a, expected[i].a);
      EXPECT_EQ(dump.events[i].type, expected[i].type);
    }
  }
}

TEST(FlightRecorder, DumpAllWithoutAnArmedDirectoryWritesNothing) {
  FlightRecorder rec;
  rec.setCapacity(8);
  rec.configureRanks(1);
  rec.record(0, BlackboxEventType::kMarker);
  EXPECT_EQ(rec.dumpAll(), 0);
}

TEST(FlightRecorder, CorruptedDumpFailsTheCrcCheck) {
  const std::string dir = tempDir("tkmc_blackbox_corrupt");
  std::vector<BlackboxEvent> events(3);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].lamport = i + 1;
    events[i].a = 7 * i;
  }
  const std::string path = dir + "/blackbox_rank0.bin";
  std::filesystem::create_directories(dir);
  FlightRecorder::writeDump(path, 0, 8, 3, events);
  ASSERT_NO_THROW((void)FlightRecorder::readDump(path));

  // Flip one payload byte in the middle: the CRC footer must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(60);
    char byte = 0;
    f.seekg(60);
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(60);
    f.write(&byte, 1);
  }
  EXPECT_THROW((void)FlightRecorder::readDump(path), IoError);

  // Truncation must fail too, not decode a partial ring.
  FlightRecorder::writeDump(path, 0, 8, 3, events);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 9);
  EXPECT_THROW((void)FlightRecorder::readDump(path), IoError);
}

TEST(FlightRecorder, DumpIncidentAppendsAReasonMarkerToEveryRing) {
  const std::string dir = tempDir("tkmc_blackbox_incident");
  FlightRecorder rec;
  rec.setCapacity(8);
  rec.configureRanks(2);
  rec.record(0, BlackboxEventType::kMarker);
  rec.setDumpDir(dir);
  EXPECT_EQ(rec.dumpIncident("on_demand"), 2);
  for (int rank = 0; rank < 2; ++rank) {
    const auto dump = FlightRecorder::readDump(
        dir + "/blackbox_rank" + std::to_string(rank) + ".bin");
    ASSERT_FALSE(dump.events.empty());
    const BlackboxEvent& last = dump.events.back();
    EXPECT_EQ(last.type,
              static_cast<std::uint16_t>(BlackboxEventType::kDump));
    EXPECT_EQ(last.a, tm::fnv1a64("on_demand"));
  }
}

TEST(FlightRecorder, Fnv1a64MatchesTheReferenceVectors) {
  EXPECT_EQ(tm::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(tm::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
}

TEST(FlightRecorder, TypeNamesCoverTheEnum) {
  EXPECT_STREQ(FlightRecorder::typeName(BlackboxEventType::kKmcEvent),
               "kmc_event");
  EXPECT_STREQ(FlightRecorder::typeName(BlackboxEventType::kDump), "dump");
  EXPECT_STREQ(FlightRecorder::typeName(BlackboxEventType::kRankKilled),
               "rank_killed");
}

// --- Dump on rank failure (end-to-end) ---------------------------------

constexpr double kCutoff = 4.0;

struct ParallelWorld {
  ParallelWorld(std::uint64_t seed, int cells = 16, int vacancies = 6)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(cells, cells, cells, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.12, vacancies, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

TEST(FlightRecorder, RankFailureDumpsADecodablePostMortem) {
  // The engine instruments the GLOBAL recorder: arm its dump dir, kill a
  // rank mid-protocol, and require that recovery left one decodable
  // blackbox per rank with the failure chain (lease expiry -> detection
  // -> dump marker) on record.
  const std::string ckptDir = tempDir("tkmc_blackbox_failstop_ckpt");
  const std::string dumpDir = tempDir("tkmc_blackbox_failstop_dump");
  FlightRecorder& rec = tm::flightRecorder();
  rec.reset();
  const std::string previousDir = rec.dumpDir();
  rec.setDumpDir(dumpDir);

  ParallelWorld w(35);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelConfig cfg;
  cfg.seed = 45;
  cfg.tStop = 5e-8;
  cfg.rankGrid = {2, 2, 1};
  cfg.checkpointDir = ckptDir;
  cfg.checkpointCadence = 1;
  cfg.heartbeatIntervalMs = 5.0;
  cfg.heartbeatTimeoutMs = 20.0;
  ParallelEngine engine(w.state, model, w.cet, cfg);
  {
    FaultInjector inj(14);
    inj.armSchedule("comm.rank_kill", {10});
    FaultScope scope(inj);
    for (int c = 0; c < 3; ++c) engine.runCycle();
  }
  ASSERT_EQ(engine.recoveryStats().rankFailures, 1u);

  int decoded = 0;
  bool sawFailure = false, sawDumpMarker = false, sawLeaseExpiry = false;
  for (int rank = 0; rank < 4; ++rank) {
    const std::string path =
        dumpDir + "/blackbox_rank" + std::to_string(rank) + ".bin";
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    const FlightRecorder::Dump dump = FlightRecorder::readDump(path);
    ++decoded;
    for (const BlackboxEvent& e : dump.events) {
      const auto type = static_cast<BlackboxEventType>(e.type);
      if (type == BlackboxEventType::kRankFailureDetected) sawFailure = true;
      if (type == BlackboxEventType::kLeaseExpired) sawLeaseExpiry = true;
      if (type == BlackboxEventType::kDump &&
          e.a == tm::fnv1a64("rank_failure"))
        sawDumpMarker = true;
    }
  }
  EXPECT_EQ(decoded, 4);
  EXPECT_TRUE(sawLeaseExpiry);
  EXPECT_TRUE(sawFailure);
  EXPECT_TRUE(sawDumpMarker);

  rec.setDumpDir(previousDir);
  rec.reset();
}

}  // namespace
}  // namespace tkmc
