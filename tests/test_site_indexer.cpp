#include "lattice/site_indexer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "lattice/bcc_lattice.hpp"

namespace tkmc {
namespace {

// Brute-force reference: the POS_ID construction the paper's Eq. 4
// replaces. Enumerates the extended box in traversal order and assigns
// locals [0, N) and ghosts [N, N + G) by first-seen order.
std::map<std::tuple<int, int, int>, std::int64_t> buildPosId(
    Vec3i origin, Vec3i extent, int ghost) {
  std::map<std::tuple<int, int, int>, std::int64_t> posId;
  std::int64_t nextLocal = 0;
  std::int64_t nextGhost = 0;
  const std::int64_t localCount = 2LL * extent.x * extent.y * extent.z;
  auto isLocal = [&](int cx, int cy, int cz) {
    return cx >= origin.x && cx < origin.x + extent.x && cy >= origin.y &&
           cy < origin.y + extent.y && cz >= origin.z && cz < origin.z + extent.z;
  };
  for (int cz = origin.z - ghost; cz < origin.z + extent.z + ghost; ++cz)
    for (int cy = origin.y - ghost; cy < origin.y + extent.y + ghost; ++cy)
      for (int cx = origin.x - ghost; cx < origin.x + extent.x + ghost; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const std::tuple<int, int, int> key{2 * cx + sub, 2 * cy + sub,
                                              2 * cz + sub};
          if (isLocal(cx, cy, cz))
            posId[key] = nextLocal++;
          else
            posId[key] = localCount + nextGhost++;
        }
  EXPECT_EQ(nextLocal, localCount);
  return posId;
}

struct IndexerCase {
  Vec3i origin;
  Vec3i extent;
  int ghost;
};

class IndexerSweep : public ::testing::TestWithParam<IndexerCase> {};

TEST_P(IndexerSweep, MatchesBruteForcePosId) {
  const auto& c = GetParam();
  const SiteIndexer idx(c.origin, c.extent, c.ghost);
  const auto posId = buildPosId(c.origin, c.extent, c.ghost);
  EXPECT_EQ(idx.extendedSiteCount(), static_cast<std::int64_t>(posId.size()));
  for (const auto& [key, expected] : posId) {
    const Vec3i p{std::get<0>(key), std::get<1>(key), std::get<2>(key)};
    ASSERT_TRUE(idx.contains(p));
    EXPECT_EQ(idx.indexOf(p), expected)
        << "at (" << p.x << "," << p.y << "," << p.z << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IndexerSweep,
    ::testing::Values(IndexerCase{{0, 0, 0}, {2, 2, 2}, 1},
                      IndexerCase{{0, 0, 0}, {3, 2, 4}, 2},
                      IndexerCase{{5, 3, 1}, {4, 4, 4}, 2},
                      IndexerCase{{2, 2, 2}, {1, 1, 1}, 1},
                      IndexerCase{{0, 0, 0}, {4, 4, 4}, 0},
                      IndexerCase{{-2, 0, 3}, {3, 3, 2}, 3}));

TEST(SiteIndexer, LocalAndGhostCountsPartitionExtended) {
  const SiteIndexer idx({0, 0, 0}, {3, 4, 2}, 2);
  EXPECT_EQ(idx.localSiteCount(), 2 * 3 * 4 * 2);
  EXPECT_EQ(idx.localSiteCount() + idx.ghostSiteCount(),
            idx.extendedSiteCount());
  EXPECT_EQ(idx.extendedSiteCount(), 2 * 7 * 8 * 6);
}

TEST(SiteIndexer, IndicesAreABijection) {
  const SiteIndexer idx({1, 1, 1}, {3, 3, 3}, 1);
  std::set<std::int64_t> seen;
  for (int cz = 0; cz < 5; ++cz)
    for (int cy = 0; cy < 5; ++cy)
      for (int cx = 0; cx < 5; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i p{2 * cx + sub, 2 * cy + sub, 2 * cz + sub};
          const std::int64_t i = idx.indexOf(p);
          EXPECT_TRUE(seen.insert(i).second);
          EXPECT_GE(i, 0);
          EXPECT_LT(i, idx.extendedSiteCount());
        }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), idx.extendedSiteCount());
}

TEST(SiteIndexer, LocalsOccupyTheFrontOfTheArray) {
  const SiteIndexer idx({0, 0, 0}, {2, 3, 2}, 2);
  for (int cz = -2; cz < 4; ++cz)
    for (int cy = -2; cy < 5; ++cy)
      for (int cx = -2; cx < 4; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i p{2 * cx + sub, 2 * cy + sub, 2 * cz + sub};
          const std::int64_t i = idx.indexOf(p);
          if (idx.isLocal(p))
            EXPECT_LT(i, idx.localSiteCount());
          else
            EXPECT_GE(i, idx.localSiteCount());
        }
}

TEST(SiteIndexer, CoordinateOfInvertsIndexOf) {
  const SiteIndexer idx({2, 0, 1}, {2, 2, 2}, 1);
  for (std::int64_t i = 0; i < idx.extendedSiteCount(); ++i) {
    const Vec3i p = idx.coordinateOf(i);
    EXPECT_EQ(idx.indexOf(p), i);
  }
}

TEST(SiteIndexer, RejectsCoordinatesOutsideExtendedBox) {
  const SiteIndexer idx({0, 0, 0}, {2, 2, 2}, 1);
  EXPECT_THROW(idx.indexOf({100, 100, 100}), Error);
  EXPECT_FALSE(idx.contains({100, 100, 100}));
  EXPECT_FALSE(idx.contains({1, 0, 0}));  // off-parity
}

TEST(SiteIndexer, NegativeGhostCoordinatesWork) {
  const SiteIndexer idx({0, 0, 0}, {2, 2, 2}, 2);
  EXPECT_TRUE(idx.contains({-4, -4, -4}));
  EXPECT_TRUE(idx.contains({-3, -3, -3}));
  EXPECT_FALSE(idx.isLocal({-1, -1, -1}));
  EXPECT_GE(idx.indexOf({-1, -1, -1}), idx.localSiteCount());
}

}  // namespace
}  // namespace tkmc
