#include "analysis/xyz_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tkmc {
namespace {

TEST(XyzWriter, LabelsPerSpecies) {
  EXPECT_STREQ(XyzWriter::label(Species::kFe), "Fe");
  EXPECT_STREQ(XyzWriter::label(Species::kCu), "Cu");
  EXPECT_STREQ(XyzWriter::label(Species::kVacancy), "X");
}

TEST(XyzWriter, FrameCountsSolutesAndVacanciesByDefault) {
  LatticeState state(BccLattice(4, 4, 4, 2.87));
  state.setSpeciesAt({0, 0, 0}, Species::kCu);
  state.setSpeciesAt({2, 2, 2}, Species::kVacancy);
  EXPECT_EQ(XyzWriter::frameAtomCount(state), 2);
  EXPECT_EQ(XyzWriter::frameAtomCount(state, /*includeMatrix=*/true),
            state.lattice().siteCount());
}

TEST(XyzWriter, FrameFormatIsExtendedXyz) {
  LatticeState state(BccLattice(3, 3, 3, 2.0));
  state.setSpeciesAt({2, 2, 2}, Species::kCu);
  std::stringstream out;
  XyzWriter::writeFrame(out, state, "time=1");
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "1");
  std::getline(out, line);
  EXPECT_NE(line.find("Lattice=\"6 0 0 0 6 0 0 0 6\""), std::string::npos);
  EXPECT_NE(line.find("time=1"), std::string::npos);
  std::getline(out, line);
  EXPECT_EQ(line, "Cu 2.00000 2.00000 2.00000");
  EXPECT_FALSE(std::getline(out, line));
}

TEST(XyzWriter, IncludeMatrixEmitsEverySite) {
  LatticeState state(BccLattice(2, 2, 2, 2.87));
  std::stringstream out;
  XyzWriter::writeFrame(out, state, "", /*includeMatrix=*/true);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "16");
  std::getline(out, line);  // comment
  int feLines = 0;
  while (std::getline(out, line))
    if (line.rfind("Fe ", 0) == 0) ++feLines;
  EXPECT_EQ(feLines, 16);
}

TEST(XyzWriter, MultipleFramesConcatenate) {
  LatticeState state(BccLattice(3, 3, 3, 2.87));
  state.setSpeciesAt({0, 0, 0}, Species::kVacancy);
  std::stringstream out;
  XyzWriter::writeFrame(out, state, "frame=0");
  state.hopVacancy({0, 0, 0}, {1, 1, 1});
  XyzWriter::writeFrame(out, state, "frame=1");
  const std::string text = out.str();
  EXPECT_NE(text.find("frame=0"), std::string::npos);
  EXPECT_NE(text.find("frame=1"), std::string::npos);
  // Vacancy moved between frames.
  EXPECT_NE(text.find("X 0.00000 0.00000 0.00000"), std::string::npos);
  EXPECT_NE(text.find("X 1.43500 1.43500 1.43500"), std::string::npos);
}

}  // namespace
}  // namespace tkmc
