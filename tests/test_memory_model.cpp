#include "openkmc/memory_model.hpp"

#include <gtest/gtest.h>

namespace tkmc {
namespace {

double toMb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

// Paper Table 1 rows (MB).
struct Table1Row {
  std::int64_t atoms;
  double t, posId, eV, eR, openRuntime;  // openRuntime < 0 => OOM
  double vacCache, tensorRuntime;
};

const Table1Row kTable1[] = {
    {2'000'000, 68, 34, 68, 68, 467, 0.09, 133},
    {16'000'000, 515, 258, 515, 515, 3038, 1.50, 1021},
    {54'000'000, 1709, 856, 1709, 1709, 9964, 2.53, 3594},
    {128'000'000, 4014, 2009, 4014, 4014, -1, 6.00, 8120},
};

class Table1Sweep : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Sweep, HeadlineArraysWithinFivePercentOfPaper) {
  const MemoryModel model;
  const auto& row = GetParam();
  const auto b = model.openKmc(row.atoms);
  EXPECT_NEAR(toMb(b.t), row.t, row.t * 0.05);
  EXPECT_NEAR(toMb(b.posId), row.posId, row.posId * 0.05);
  EXPECT_NEAR(toMb(b.eV), row.eV, row.eV * 0.05);
  EXPECT_NEAR(toMb(b.eR), row.eR, row.eR * 0.05);
}

TEST_P(Table1Sweep, RuntimeWithinFifteenPercentOfPaper) {
  const MemoryModel model;
  const auto& row = GetParam();
  if (row.openRuntime > 0) {
    EXPECT_NEAR(toMb(model.openKmc(row.atoms).runtime), row.openRuntime,
                row.openRuntime * 0.15);
  }
  EXPECT_NEAR(toMb(model.tensorKmc(row.atoms).runtime), row.tensorRuntime,
              row.tensorRuntime * 0.15);
}

TEST_P(Table1Sweep, VacancyCacheWithinTenPercentOfPaper) {
  const MemoryModel model;
  const auto& row = GetParam();
  // The paper's 16 M row (1.50 MB) is inconsistent with its own
  // per-vacancy footprint (~5.9 kB/vacancy, which the 2 M, 54 M and
  // 128 M rows all follow); we reproduce the consistent layout and skip
  // that row here. See EXPERIMENTS.md.
  if (row.atoms == 16'000'000) {
    GTEST_SKIP() << "paper row inconsistent with its own cache layout";
  }
  EXPECT_NEAR(toMb(model.tensorKmc(row.atoms).vacCache), row.vacCache,
              row.vacCache * 0.10 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table1Sweep, ::testing::ValuesIn(kTable1));

TEST(MemoryModel, OpenKmcCannotFit128MAtomsInOneCg) {
  const MemoryModel model;
  EXPECT_GT(model.openKmc(128'000'000).runtime, MemoryModel::kCgCapacityBytes);
}

TEST(MemoryModel, TensorKmcFits128MAtomsInOneCg) {
  const MemoryModel model;
  EXPECT_LT(model.tensorKmc(128'000'000).runtime,
            MemoryModel::kCgCapacityBytes);
}

TEST(MemoryModel, TensorKmcNeedsRoughlyAThirdOfOpenKmc) {
  const MemoryModel model;
  for (std::int64_t atoms : {2'000'000LL, 16'000'000LL, 54'000'000LL}) {
    const double ratio =
        static_cast<double>(model.tensorKmc(atoms).runtime) /
        static_cast<double>(model.openKmc(atoms).runtime);
    EXPECT_GT(ratio, 0.2);
    EXPECT_LT(ratio, 0.45);
  }
}

TEST(MemoryModel, PerAtomCostNearPaperFigure) {
  // Strong-scaling setup: 160 M atoms/CG at ~0.10 kB per atom.
  const MemoryModel model;
  const double perAtom =
      static_cast<double>(model.tensorKmc(160'000'000).runtime) / 160e6;
  EXPECT_LT(perAtom, 100.0);
  EXPECT_GT(perAtom, 30.0);
}

TEST(MemoryModel, BreakdownGrowsMonotonically) {
  const MemoryModel model;
  std::size_t prevOpen = 0, prevTensor = 0;
  for (std::int64_t atoms : {2'000'000LL, 16'000'000LL, 54'000'000LL,
                             128'000'000LL}) {
    const auto open = model.openKmc(atoms).runtime;
    const auto tensor = model.tensorKmc(atoms).runtime;
    EXPECT_GT(open, prevOpen);
    EXPECT_GT(tensor, prevTensor);
    prevOpen = open;
    prevTensor = tensor;
  }
}

TEST(MemoryModel, CellsForAtomsInvertsCubicBox) {
  EXPECT_EQ(MemoryModel::cellsForAtoms(2'000'000), 100);
  EXPECT_EQ(MemoryModel::cellsForAtoms(16'000'000), 200);
  EXPECT_EQ(MemoryModel::cellsForAtoms(54'000'000), 300);
  EXPECT_EQ(MemoryModel::cellsForAtoms(128'000'000), 400);
}

}  // namespace
}  // namespace tkmc
