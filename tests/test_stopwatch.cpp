// Stopwatch pause/resume semantics. Assertions are structural (frozen
// while paused, growing while running) rather than duration-based, so
// the suite stays deterministic on loaded CI hosts.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/stopwatch.hpp"

namespace tkmc {
namespace {

void sleepBriefly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

TEST(Stopwatch, RunsFromConstruction) {
  Stopwatch w;
  EXPECT_TRUE(w.running());
  sleepBriefly();
  EXPECT_GT(w.seconds(), 0.0);
}

TEST(Stopwatch, SecondsIsMonotoneWhileRunning) {
  Stopwatch w;
  const double a = w.seconds();
  sleepBriefly();
  const double b = w.seconds();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0.0);
}

TEST(Stopwatch, PauseFreezesAccumulatedTime) {
  Stopwatch w;
  sleepBriefly();
  w.pause();
  EXPECT_FALSE(w.running());
  const double frozen = w.seconds();
  sleepBriefly();
  EXPECT_DOUBLE_EQ(w.seconds(), frozen);
  // Pausing twice is a no-op.
  w.pause();
  EXPECT_DOUBLE_EQ(w.seconds(), frozen);
}

TEST(Stopwatch, ResumeContinuesFromAccumulatedTime) {
  Stopwatch w;
  sleepBriefly();
  w.pause();
  const double beforeResume = w.seconds();
  w.resume();
  EXPECT_TRUE(w.running());
  // Resuming twice is a no-op (must not discard the running segment).
  w.resume();
  sleepBriefly();
  EXPECT_GT(w.seconds(), beforeResume);
}

TEST(Stopwatch, PausedIntervalIsExcluded) {
  Stopwatch w;
  w.pause();
  const double active = w.seconds();
  // A long paused wait must not show up in the accumulated time.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_DOUBLE_EQ(w.seconds(), active);
  w.resume();
  sleepBriefly();
  w.pause();
  // Total reflects only the two active segments, which are far shorter
  // than the paused 30 ms plus slack.
  EXPECT_GT(w.seconds(), active);
}

TEST(Stopwatch, ResetRestartsRunning) {
  Stopwatch w;
  sleepBriefly();
  w.pause();
  w.reset();
  EXPECT_TRUE(w.running());
  sleepBriefly();
  EXPECT_GT(w.seconds(), 0.0);
  EXPECT_LT(w.seconds(), 10.0);  // sanity: epoch restarted
}

TEST(Stopwatch, UnitConversionsAgree) {
  Stopwatch w;
  sleepBriefly();
  w.pause();
  const double s = w.seconds();
  EXPECT_DOUBLE_EQ(w.milliseconds(), s * 1e3);
  EXPECT_DOUBLE_EQ(w.microseconds(), s * 1e6);
}

}  // namespace
}  // namespace tkmc
