#include "parallel/scaling_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tkmc {
namespace {

// Paper sweep shapes: Fig. 12 strong scaling (1.92e12 atoms, 12k -> 384k
// CGs), Fig. 13 weak scaling (128 M atoms per CG).
const std::vector<std::int64_t> kStrongCgs = {12000, 24000, 48000, 96000,
                                              192000, 384000};
const std::vector<std::int64_t> kWeakCgs = {12000, 48000, 96000, 192000,
                                            384000, 422400};

TEST(ScalingModel, StrongScalingBaselineHasUnitEfficiency) {
  const ScalingModel model;
  const auto pts = model.strongScaling(1.92e12, kStrongCgs, 1e-7);
  ASSERT_EQ(pts.size(), kStrongCgs.size());
  EXPECT_DOUBLE_EQ(pts.front().efficiency, 1.0);
  EXPECT_DOUBLE_EQ(pts.front().speedup, 1.0);
}

TEST(ScalingModel, StrongScalingEfficiencyDecaysMonotonically) {
  const ScalingModel model;
  const auto pts = model.strongScaling(1.92e12, kStrongCgs, 1e-7);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LE(pts[i].efficiency, pts[i - 1].efficiency + 1e-12);
}

TEST(ScalingModel, StrongScalingStaysNearPaperEfficiencyAt32x) {
  // Paper: 85% parallel efficiency at 384k CGs (32x the baseline).
  const ScalingModel model;
  const auto pts = model.strongScaling(1.92e12, kStrongCgs, 1e-7);
  const double eff = pts.back().efficiency;
  EXPECT_GT(eff, 0.70);
  EXPECT_LT(eff, 0.98);
}

TEST(ScalingModel, StrongScalingTimeDecreasesWithRanks) {
  const ScalingModel model;
  const auto pts = model.strongScaling(1.92e12, kStrongCgs, 1e-7);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LT(pts[i].totalSeconds, pts[i - 1].totalSeconds);
}

TEST(ScalingModel, WeakScalingStaysNearlyFlat) {
  const ScalingModel model;
  const auto pts = model.weakScaling(1.28e8, kWeakCgs, 1e-7);
  EXPECT_DOUBLE_EQ(pts.front().efficiency, 1.0);
  for (const auto& pt : pts) {
    EXPECT_GT(pt.efficiency, 0.85);  // paper: "excellent scaling"
    EXPECT_LE(pt.efficiency, 1.0 + 1e-12);
  }
}

TEST(ScalingModel, WeakScalingEfficiencyDeclinesOnlyViaSyncTerm) {
  const ScalingModel model;
  const auto pts = model.weakScaling(1.28e8, kWeakCgs, 1e-7);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LE(pts[i].efficiency, pts[i - 1].efficiency + 1e-12);
}

TEST(ScalingModel, ComputeScalesAlmostLinearlyWithAtoms) {
  // Mean work is linear in the atom count; the barrier-imbalance factor
  // shrinks with more events per window, so doubling the atoms costs
  // slightly *less* than twice the time.
  const ScalingModel model;
  const double t1 = model.computeSeconds(1e8, 1e-7);
  const double t2 = model.computeSeconds(2e8, 1e-7);
  EXPECT_LT(t2, 2 * t1);
  EXPECT_GT(t2, 1.8 * t1);
}

TEST(ScalingModel, CommGrowsWithRankCountViaAllreduce) {
  const ScalingModel model;
  EXPECT_LT(model.commSeconds(1e8, 100, 1e-7),
            model.commSeconds(1e8, 1'000'000, 1e-7));
}

TEST(ScalingModel, CoresAreSixtyFivePerCg) {
  const ScalingModel model;
  const auto pts = model.strongScaling(1.92e12, {12000, 384000}, 1e-7);
  EXPECT_EQ(pts.front().cores, 780000);     // paper: 780,000 cores baseline
  EXPECT_EQ(pts.back().cores, 24960000);    // paper: 24,960,000 cores
}

TEST(ScalingModel, WeakScalingTopEndMatchesPaperScale) {
  const ScalingModel model;
  const auto pts = model.weakScaling(1.28e8, kWeakCgs, 1e-7);
  EXPECT_EQ(pts.back().cores, 27456000);  // 422,400 CGs x 65
  // 422,400 CGs x 128 M atoms = 54.067 trillion atoms.
  EXPECT_NEAR(pts.back().atomsPerCg * 422400, 54.0672e12, 1e9);
}

TEST(ScalingModel, EmptySweepThrows) {
  const ScalingModel model;
  EXPECT_THROW(model.strongScaling(1e12, {}, 1e-7), Error);
  EXPECT_THROW(model.commSeconds(1e8, 0, 1e-7), Error);
}

}  // namespace
}  // namespace tkmc
