// Physics-level validation of the AKMC machinery: known closed-form
// behaviour of the rate law and the residence-time algorithm on
// analytically tractable systems.

#include <gtest/gtest.h>

#include <cmath>

#include "kmc/eam_energy_model.hpp"
#include "kmc/serial_engine.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

struct PureIronWorld {
  explicit PureIronWorld(int cells = 12)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(cells, cells, cells, 2.87), state(lattice) {
    state.fill(Species::kFe);
    state.setSpeciesAt({cells, cells, cells}, Species::kVacancy);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

TEST(Physics, PureIronLandscapeIsFlat) {
  // Every site of a pure Fe crystal is equivalent, so all eight jumps
  // must carry exactly the reference barrier.
  PureIronWorld w;
  EamEnergyModel model(w.cet, w.net, w.eam);
  const auto energies =
      model.stateEnergies(w.state, {12, 12, 12}, kNumJumpDirections);
  for (int k = 1; k <= kNumJumpDirections; ++k)
    EXPECT_NEAR(energies[static_cast<std::size_t>(k)], energies[0], 1e-9);
}

TEST(Physics, MeanResidenceTimeMatchesRateLaw) {
  // Flat landscape: total propensity is exactly 8 * Gamma0 *
  // exp(-Ea0(Fe)/kT); the average KMC time step must converge to its
  // inverse.
  PureIronWorld w;
  EamEnergyModel model(w.cet, w.net, w.eam);
  KmcConfig cfg;
  cfg.temperature = 573.0;
  cfg.seed = 5;
  cfg.tEnd = 1e300;
  SerialEngine engine(w.state, model, w.cet, cfg);
  const int steps = 4000;
  for (int i = 0; i < steps; ++i) engine.step();
  const double rate =
      kAttemptFrequency * std::exp(-kActivationFe / (kBoltzmannEv * 573.0));
  const double expectedMeanDt = 1.0 / (8.0 * rate);
  const double meanDt = engine.time() / static_cast<double>(steps);
  EXPECT_NEAR(meanDt, expectedMeanDt, expectedMeanDt * 0.05);
}

TEST(Physics, RandomWalkMeanSquaredDisplacement) {
  // On the flat landscape the vacancy performs an isotropic random walk:
  // <R^2> after n hops is n * (sqrt(3) a / 2)^2. Average over
  // independent walks (different seeds).
  const double a = 2.87;
  const double hopLength2 = 3.0 * a * a / 4.0;
  // R^2 at fixed n is heavy-tailed (chi^2_3-like), so the sample mean
  // converges slowly; 200 walks put a 20% band at ~3.5 sigma.
  const int hops = 150;
  const int walks = 200;
  double sumR2 = 0.0;
  for (int walk = 0; walk < walks; ++walk) {
    PureIronWorld w;
    EamEnergyModel model(w.cet, w.net, w.eam);
    KmcConfig cfg;
    cfg.seed = 1000 + static_cast<std::uint64_t>(walk);
    cfg.tEnd = 1e300;
    SerialEngine engine(w.state, model, w.cet, cfg);
    Vec3d displacement{};
    engine.setObserver(
        [&](const SerialEngine& e, const SerialEngine::StepResult& r) {
          const Vec3i d = e.state().lattice().minimumImage(r.from, r.to);
          displacement = displacement + Vec3d{d.x * a / 2, d.y * a / 2,
                                              d.z * a / 2};
        });
    for (int i = 0; i < hops; ++i) engine.step();
    sumR2 += displacement.x * displacement.x +
             displacement.y * displacement.y +
             displacement.z * displacement.z;
  }
  const double meanR2PerHop = sumR2 / walks / hops;
  EXPECT_NEAR(meanR2PerHop, hopLength2, hopLength2 * 0.20);
}

TEST(Physics, ForwardAndReverseEnergyDifferencesAreOpposite) {
  // The jumping region must contain every atom whose energy a hop can
  // change; if it does, dE(forward) == -dE(reverse) exactly. Run the
  // check along a trajectory through a disordered alloy.
  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const EamPotential eam(kCutoff);
  EamEnergyModel model(cet, net, eam);
  LatticeState state(BccLattice(12, 12, 12, 2.87));
  Rng rng(21);
  state.randomAlloy(0.2, 1, rng);
  const auto& jumps = BccLattice::firstNeighborOffsets();

  for (int trial = 0; trial < 40; ++trial) {
    const Vec3i from = state.lattice().wrap(state.vacancies()[0]);
    const auto before =
        model.stateEnergies(state, from, kNumJumpDirections);
    const int k = static_cast<int>(rng.uniformBelow(8));
    const Vec3i to = state.lattice().wrap(from + jumps[static_cast<std::size_t>(k)]);
    if (state.speciesAt(to) == Species::kVacancy) continue;
    const double dForward = before[static_cast<std::size_t>(k) + 1] - before[0];

    state.hopVacancy(from, to);
    const auto after = model.stateEnergies(state, to, kNumJumpDirections);
    // Find the reverse direction.
    int reverse = -1;
    for (int j = 0; j < kNumJumpDirections; ++j)
      if (state.lattice().wrap(to + jumps[static_cast<std::size_t>(j)]) == from)
        reverse = j;
    ASSERT_GE(reverse, 0);
    const double dReverse = after[static_cast<std::size_t>(reverse) + 1] - after[0];
    EXPECT_NEAR(dForward, -dReverse, 1e-9) << "trial " << trial;
  }
}

TEST(Physics, DetailedBalanceRatioOfRates) {
  // Gamma_fwd / Gamma_rev = exp(-dE / kT) whenever the same species
  // migrates both ways and neither barrier clamps at zero (Eq. 1-2).
  const Cet cet(2.87, kCutoff);
  const Net net(cet);
  const EamPotential eam(kCutoff);
  EamEnergyModel model(cet, net, eam);
  LatticeState state(BccLattice(12, 12, 12, 2.87));
  Rng rng(31);
  state.randomAlloy(0.2, 1, rng);
  const auto& jumps = BccLattice::firstNeighborOffsets();
  const double kt = kBoltzmannEv * 573.0;

  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Vec3i from = state.lattice().wrap(state.vacancies()[0]);
    Vet vetBefore = Vet::gather(cet, state, from);
    const auto before = model.stateEnergies(state, from, kNumJumpDirections);
    const JumpRates ratesBefore = computeRates(vetBefore, before, 573.0);
    const int k = static_cast<int>(rng.uniformBelow(8));
    const Vec3i to = state.lattice().wrap(from + jumps[static_cast<std::size_t>(k)]);
    if (state.speciesAt(to) == Species::kVacancy) continue;
    const double dE = before[static_cast<std::size_t>(k) + 1] - before[0];
    const Species migrating = state.speciesAt(to);
    // Skip clamped barriers, where the ratio law does not apply.
    if (referenceActivation(migrating) - std::abs(dE) / 2 <= 0) continue;

    state.hopVacancy(from, to);
    Vet vetAfter = Vet::gather(cet, state, to);
    const auto after = model.stateEnergies(state, to, kNumJumpDirections);
    const JumpRates ratesAfter = computeRates(vetAfter, after, 573.0);
    int reverse = -1;
    for (int j = 0; j < kNumJumpDirections; ++j)
      if (state.lattice().wrap(to + jumps[static_cast<std::size_t>(j)]) == from)
        reverse = j;
    ASSERT_GE(reverse, 0);
    const double ratio = ratesBefore.rate[static_cast<std::size_t>(k)] /
                         ratesAfter.rate[static_cast<std::size_t>(reverse)];
    EXPECT_NEAR(std::log(ratio), -dE / kt, 1e-6) << "trial " << trial;
    ++checked;
  }
  EXPECT_GT(checked, 10);  // the sweep must actually exercise the law
}

TEST(Physics, CopperDiffusesFasterThanIron) {
  // Same flat-environment setup but the migrating atom is Cu: with
  // E_a0(Cu) < E_a0(Fe), the Cu exchange dominates the propensity.
  PureIronWorld w;
  w.state.setSpeciesAt({13, 13, 13}, Species::kCu);  // 1NN of the vacancy
  EamEnergyModel model(w.cet, w.net, w.eam);
  Vet vet = Vet::gather(w.cet, w.state, {12, 12, 12});
  const auto energies = model.stateEnergiesFromVet(vet, kNumJumpDirections);
  const JumpRates rates = computeRates(vet, energies, 573.0);
  int cuDirection = -1;
  for (int k = 0; k < kNumJumpDirections; ++k)
    if (vet[Cet::jumpTargetId(k)] == Species::kCu) cuDirection = k;
  ASSERT_GE(cuDirection, 0);
  for (int k = 0; k < kNumJumpDirections; ++k) {
    if (k == cuDirection) continue;
    EXPECT_GT(rates.rate[static_cast<std::size_t>(cuDirection)],
              rates.rate[static_cast<std::size_t>(k)]);
  }
}

}  // namespace
}  // namespace tkmc
