#include "kmc/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "kmc/eam_energy_model.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

std::string tempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct World {
  explicit World(std::uint64_t seed)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(12, 12, 12, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.12, 3, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

KmcConfig config(std::uint64_t seed) {
  KmcConfig cfg;
  cfg.seed = seed;
  cfg.tEnd = 1e300;
  return cfg;
}

TEST(Checkpoint, RoundTripPreservesEverything) {
  World w(1);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(5));
  for (int i = 0; i < 37; ++i) engine.step();

  const std::string path = tempPath("tkmc_checkpoint_roundtrip.chk");
  saveCheckpoint(path, w.state, engine);
  const CheckpointData data = loadCheckpoint(path);
  EXPECT_EQ(data.cellsX, 12);
  EXPECT_DOUBLE_EQ(data.latticeConstant, 2.87);
  EXPECT_DOUBLE_EQ(data.engine.time, engine.time());
  EXPECT_EQ(data.engine.steps, 37u);
  const LatticeState restored = data.restoreState();
  EXPECT_TRUE(restored == w.state);
  EXPECT_EQ(restored.contentHash(), w.state.contentHash());
  EXPECT_EQ(restored.vacancies(), w.state.vacancies());
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumedTrajectoryIsBitExact) {
  // Reference: one engine runs 60 steps straight through.
  World ref(2);
  EamEnergyModel refModel(ref.cet, ref.net, ref.eam);
  SerialEngine refEngine(ref.state, refModel, ref.cet, config(9));
  for (int i = 0; i < 30; ++i) refEngine.step();

  // Checkpoint at step 30 and keep going to 60.
  const std::string path = tempPath("tkmc_checkpoint_resume.chk");
  saveCheckpoint(path, ref.state, refEngine);
  std::vector<SerialEngine::StepResult> referenceTail;
  for (int i = 0; i < 30; ++i) referenceTail.push_back(refEngine.step());

  // Resume from the file in a fresh world and replay the tail.
  const CheckpointData data = loadCheckpoint(path);
  LatticeState resumedState = data.restoreState();
  World scratch(3);  // only provides tables/potential
  EamEnergyModel model(scratch.cet, scratch.net, scratch.eam);
  SerialEngine resumed(resumedState, model, scratch.cet, config(777));
  resumed.restore(data.engine);
  EXPECT_DOUBLE_EQ(resumed.time(), data.engine.time);
  for (int i = 0; i < 30; ++i) {
    const auto r = resumed.step();
    ASSERT_EQ(r.from, referenceTail[static_cast<std::size_t>(i)].from)
        << "step " << i;
    ASSERT_EQ(r.to, referenceTail[static_cast<std::size_t>(i)].to);
    ASSERT_EQ(r.dt, referenceTail[static_cast<std::size_t>(i)].dt);
  }
  EXPECT_TRUE(resumedState == ref.state);
  EXPECT_DOUBLE_EQ(resumed.time(), refEngine.time());
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeWithoutCacheAlsoBitExact) {
  World ref(4);
  EamEnergyModel refModel(ref.cet, ref.net, ref.eam);
  KmcConfig noCache = config(11);
  noCache.useVacancyCache = false;
  SerialEngine refEngine(ref.state, refModel, ref.cet, noCache);
  for (int i = 0; i < 20; ++i) refEngine.step();
  const std::string path = tempPath("tkmc_checkpoint_nocache.chk");
  saveCheckpoint(path, ref.state, refEngine);
  const auto tail = refEngine.step();

  const CheckpointData data = loadCheckpoint(path);
  LatticeState resumedState = data.restoreState();
  World scratch(5);
  EamEnergyModel model(scratch.cet, scratch.net, scratch.eam);
  SerialEngine resumed(resumedState, model, scratch.cet, noCache);
  resumed.restore(data.engine);
  const auto r = resumed.step();
  EXPECT_EQ(r.from, tail.from);
  EXPECT_EQ(r.to, tail.to);
  EXPECT_EQ(r.dt, tail.dt);
  std::remove(path.c_str());
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

void cleanupReplicas(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(loadCheckpoint("/no/such/file.chk"), IoError);
}

TEST(Checkpoint, WritesV3PackedWithCrcFooterAndNoTempResidue) {
  World w(7);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(15));
  const std::string path = tempPath("tkmc_checkpoint_v3.chk");
  cleanupReplicas(path);
  saveCheckpoint(path, w.state, engine);
  const std::string contents = readFile(path);
  EXPECT_EQ(contents.rfind("tensorkmc-checkpoint 3\n", 0), 0u);
  EXPECT_NE(contents.rfind("\ncrc32 "), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const CheckpointData data = loadCheckpoint(path);
  EXPECT_TRUE(data.restoreState() == w.state);
  cleanupReplicas(path);
}

TEST(Checkpoint, V3PackedBodyIsHalfTheDenseBody) {
  // The packed occupation (4 sites/byte, hex-encoded: 2 chars per byte)
  // must come in at half the one-digit-per-site v2 body.
  World w(14);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(29));
  const std::string v3 = tempPath("tkmc_checkpoint_size_v3.chk");
  const std::string v2 = tempPath("tkmc_checkpoint_size_v2.chk");
  cleanupReplicas(v3);
  cleanupReplicas(v2);
  saveCheckpoint(v3, w.state, engine);
  saveCheckpointV2(v2, w.state, engine);
  EXPECT_LT(std::filesystem::file_size(v3),
            std::filesystem::file_size(v2) * 6 / 10);
  cleanupReplicas(v3);
  cleanupReplicas(v2);
}

TEST(Checkpoint, V2FilesStillLoadBitExactThroughFallbackPath) {
  // Files produced by the retained v2 writer (dense digit body + CRC
  // footer) must load bit-exactly through loadCheckpointWithFallback.
  World w(15);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(33));
  for (int i = 0; i < 11; ++i) engine.step();
  const std::string path = tempPath("tkmc_checkpoint_v2compat.chk");
  cleanupReplicas(path);
  saveCheckpointV2(path, w.state, engine);
  const std::string contents = readFile(path);
  EXPECT_EQ(contents.rfind("tensorkmc-checkpoint 2\n", 0), 0u);
  EXPECT_NE(contents.rfind("\ncrc32 "), std::string::npos);
  const CheckpointLoadResult result = loadCheckpointWithFallback(path);
  EXPECT_FALSE(result.usedBackup);
  EXPECT_EQ(result.data.engine.steps, 11u);
  const LatticeState restored = result.data.restoreState();
  EXPECT_TRUE(restored == w.state);
  EXPECT_EQ(restored.contentHash(), w.state.contentHash());
  EXPECT_EQ(restored.vacancies(), w.state.vacancies());
  cleanupReplicas(path);
}

TEST(Checkpoint, BitFlippedBodyFailsCrc) {
  World w(8);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(17));
  const std::string path = tempPath("tkmc_checkpoint_bitflip.chk");
  cleanupReplicas(path);
  saveCheckpoint(path, w.state, engine);
  std::string contents = readFile(path);
  contents[contents.size() / 2] ^= 0x01;  // single bit flip in the body
  writeFile(path, contents);
  EXPECT_THROW(loadCheckpoint(path), IoError);
  cleanupReplicas(path);
}

TEST(Checkpoint, WrongMagicAndVersionAreTypedErrors) {
  const std::string path = tempPath("tkmc_checkpoint_magic.chk");
  writeFile(path, "not-a-checkpoint 7\n");
  EXPECT_THROW(loadCheckpoint(path), IoError);
  writeFile(path, "tensorkmc-checkpoint 9\n1 1 1 2.87\n");
  EXPECT_THROW(loadCheckpoint(path), IoError);
  cleanupReplicas(path);
}

TEST(Checkpoint, VacancyListDisagreeingWithOccupationIsInvariantError) {
  World w(9);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(19));
  const std::string path = tempPath("tkmc_checkpoint_vacdisagree.chk");
  cleanupReplicas(path);
  saveCheckpoint(path, w.state, engine);
  CheckpointData data = loadCheckpoint(path);
  // Point the first vacancy at a site the occupation says is an atom.
  const BccLattice lat(data.cellsX, data.cellsY, data.cellsZ,
                       data.latticeConstant);
  Vec3i forged{0, 0, 0};
  bool found = false;
  for (int x = 0; x < 8 && !found; x += 2)
    for (int y = 0; y < 8 && !found; y += 2) {
      const Vec3i p{x, y, 0};
      if (data.species[static_cast<std::size_t>(lat.siteId(p))] !=
          Species::kVacancy) {
        forged = p;
        found = true;
      }
    }
  ASSERT_TRUE(found);
  data.vacancyOrder[0] = forged;
  EXPECT_THROW(data.restoreState(), InvariantError);
  cleanupReplicas(path);
}

TEST(Checkpoint, SecondSaveRotatesBackupAndFallbackRecovers) {
  World w(10);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(21));
  const std::string path = tempPath("tkmc_checkpoint_rotate.chk");
  cleanupReplicas(path);
  saveCheckpoint(path, w.state, engine);        // good primary
  engine.step();
  saveCheckpoint(path, w.state, engine);        // rotates good -> .bak
  ASSERT_TRUE(std::filesystem::exists(path + ".bak"));

  // Corrupt the primary; fallback must degrade to the backup.
  std::string contents = readFile(path);
  contents[contents.size() / 3] ^= 0x04;
  writeFile(path, contents);
  EXPECT_THROW(loadCheckpoint(path), IoError);
  const CheckpointLoadResult result = loadCheckpointWithFallback(path);
  EXPECT_TRUE(result.usedBackup);
  EXPECT_EQ(result.data.engine.steps, 0u);  // the pre-step snapshot
  cleanupReplicas(path);
}

TEST(Checkpoint, FallbackPrefersHealthyPrimary) {
  World w(11);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(23));
  const std::string path = tempPath("tkmc_checkpoint_primary.chk");
  cleanupReplicas(path);
  saveCheckpoint(path, w.state, engine);
  const CheckpointLoadResult result = loadCheckpointWithFallback(path);
  EXPECT_FALSE(result.usedBackup);
  cleanupReplicas(path);
}

TEST(Checkpoint, BothReplicasCorruptIsUnrecoverable) {
  const std::string path = tempPath("tkmc_checkpoint_unrecoverable.chk");
  writeFile(path, "garbage");
  writeFile(path + ".bak", "more garbage");
  EXPECT_THROW(loadCheckpointWithFallback(path), IoError);
  cleanupReplicas(path);
}

TEST(Checkpoint, InjectedCorruptWriteIsCaughtAndBackupServes) {
  World w(12);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(25));
  for (int i = 0; i < 5; ++i) engine.step();
  const std::string path = tempPath("tkmc_checkpoint_injected.chk");
  cleanupReplicas(path);
  saveCheckpoint(path, w.state, engine);  // good replica

  FaultInjector inj(31);
  inj.armOnce("checkpoint.corrupt_write");
  FaultScope scope(inj);
  engine.step();
  saveCheckpoint(path, w.state, engine);  // corrupted on the way out
  EXPECT_EQ(inj.fireCount("checkpoint.corrupt_write"), 1u);
  EXPECT_THROW(loadCheckpoint(path), IoError);

  const CheckpointLoadResult result = loadCheckpointWithFallback(path);
  EXPECT_TRUE(result.usedBackup);
  EXPECT_EQ(result.data.engine.steps, 5u);
  // Round trip continues from the recovered replica.
  const LatticeState restored = result.data.restoreState();
  EXPECT_EQ(restored.vacancies().size(), 3u);
  cleanupReplicas(path);
}

TEST(Checkpoint, V1FilesStillLoadReadOnly) {
  World w(13);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(27));
  for (int i = 0; i < 3; ++i) engine.step();
  const std::string path = tempPath("tkmc_checkpoint_v1.chk");
  cleanupReplicas(path);
  saveCheckpointV1(path, w.state, engine);
  const std::string contents = readFile(path);
  EXPECT_EQ(contents.rfind("tensorkmc-checkpoint 1\n", 0), 0u);
  EXPECT_EQ(contents.rfind("\ncrc32 "), std::string::npos);
  const CheckpointData data = loadCheckpoint(path);
  EXPECT_EQ(data.engine.steps, 3u);
  EXPECT_TRUE(data.restoreState() == w.state);
  // The same v1 file must also serve through the fallback-aware loader.
  const CheckpointLoadResult viaFallback = loadCheckpointWithFallback(path);
  EXPECT_FALSE(viaFallback.usedBackup);
  EXPECT_TRUE(viaFallback.data.restoreState() == w.state);
  EXPECT_EQ(viaFallback.data.restoreState().contentHash(),
            w.state.contentHash());
  cleanupReplicas(path);
}

TEST(Checkpoint, CorruptFileThrows) {
  const std::string path = tempPath("tkmc_checkpoint_corrupt.chk");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not-a-checkpoint 7\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(loadCheckpoint(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedOccupationThrows) {
  World w(6);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(13));
  const std::string path = tempPath("tkmc_checkpoint_trunc.chk");
  saveCheckpoint(path, w.state, engine);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 200);
  EXPECT_THROW(loadCheckpoint(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncationAtAnyOffsetFallsBackToBackup) {
  // A v3 file torn mid packed-hex line (not just at a line boundary)
  // must degrade to the .bak replica through the fallback loader, never
  // escape as an untyped error, and never serve partial state.
  World w(16);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(35));
  for (int i = 0; i < 4; ++i) engine.step();
  const std::string path = tempPath("tkmc_checkpoint_trunc_fallback.chk");
  cleanupReplicas(path);
  saveCheckpoint(path, w.state, engine);  // becomes .bak on the next save
  engine.step();
  saveCheckpoint(path, w.state, engine);
  ASSERT_TRUE(std::filesystem::exists(path + ".bak"));
  const std::string intact = readFile(path);
  const std::size_t size = intact.size();
  // Offsets chosen to land mid-footer, mid-hex-line, mid-body, and just
  // past the header.
  const std::size_t cuts[] = {size - 3, size - 47, size - 200, size / 2 + 7,
                              size / 4, 40};
  for (const std::size_t cut : cuts) {
    writeFile(path, intact.substr(0, cut));
    EXPECT_THROW(loadCheckpoint(path), IoError) << "cut at " << cut;
    CheckpointLoadResult result;
    ASSERT_NO_THROW(result = loadCheckpointWithFallback(path))
        << "cut at " << cut;
    EXPECT_TRUE(result.usedBackup) << "cut at " << cut;
    EXPECT_EQ(result.data.engine.steps, 4u) << "cut at " << cut;
  }
  cleanupReplicas(path);
}

TEST(Checkpoint, AbsurdHeaderGeometryIsATypedErrorAndFallsBack) {
  // A header claiming a preposterous box must surface as IoError (not a
  // bad_alloc / length_error from trying to allocate it) and must not
  // block fallback to a healthy backup.
  const std::string path = tempPath("tkmc_checkpoint_hugehdr.chk");
  cleanupReplicas(path);
  writeFile(path,
            "tensorkmc-checkpoint 1\n99999999 99999999 99999999 2.87\n"
            "0.0 0\n1 2 3 4\n0\n");
  EXPECT_THROW(loadCheckpoint(path), IoError);
  EXPECT_THROW(loadCheckpointWithFallback(path), IoError);  // no backup

  World w(17);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(37));
  for (int i = 0; i < 2; ++i) engine.step();
  saveCheckpoint(path + ".bak", w.state, engine);  // healthy backup appears
  const CheckpointLoadResult result = loadCheckpointWithFallback(path);
  EXPECT_TRUE(result.usedBackup);
  EXPECT_EQ(result.data.engine.steps, 2u);
  EXPECT_TRUE(result.data.restoreState() == w.state);
  cleanupReplicas(path);
}

}  // namespace
}  // namespace tkmc
