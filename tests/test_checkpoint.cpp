#include "kmc/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "kmc/eam_energy_model.hpp"

namespace tkmc {
namespace {

constexpr double kCutoff = 4.0;

std::string tempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct World {
  explicit World(std::uint64_t seed)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(12, 12, 12, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.12, 3, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

KmcConfig config(std::uint64_t seed) {
  KmcConfig cfg;
  cfg.seed = seed;
  cfg.tEnd = 1e300;
  return cfg;
}

TEST(Checkpoint, RoundTripPreservesEverything) {
  World w(1);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(5));
  for (int i = 0; i < 37; ++i) engine.step();

  const std::string path = tempPath("tkmc_checkpoint_roundtrip.chk");
  saveCheckpoint(path, w.state, engine);
  const CheckpointData data = loadCheckpoint(path);
  EXPECT_EQ(data.cellsX, 12);
  EXPECT_DOUBLE_EQ(data.latticeConstant, 2.87);
  EXPECT_DOUBLE_EQ(data.engine.time, engine.time());
  EXPECT_EQ(data.engine.steps, 37u);
  const LatticeState restored = data.restoreState();
  EXPECT_EQ(restored.raw(), w.state.raw());
  EXPECT_EQ(restored.vacancies(), w.state.vacancies());
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumedTrajectoryIsBitExact) {
  // Reference: one engine runs 60 steps straight through.
  World ref(2);
  EamEnergyModel refModel(ref.cet, ref.net, ref.eam);
  SerialEngine refEngine(ref.state, refModel, ref.cet, config(9));
  for (int i = 0; i < 30; ++i) refEngine.step();

  // Checkpoint at step 30 and keep going to 60.
  const std::string path = tempPath("tkmc_checkpoint_resume.chk");
  saveCheckpoint(path, ref.state, refEngine);
  std::vector<SerialEngine::StepResult> referenceTail;
  for (int i = 0; i < 30; ++i) referenceTail.push_back(refEngine.step());

  // Resume from the file in a fresh world and replay the tail.
  const CheckpointData data = loadCheckpoint(path);
  LatticeState resumedState = data.restoreState();
  World scratch(3);  // only provides tables/potential
  EamEnergyModel model(scratch.cet, scratch.net, scratch.eam);
  SerialEngine resumed(resumedState, model, scratch.cet, config(777));
  resumed.restore(data.engine);
  EXPECT_DOUBLE_EQ(resumed.time(), data.engine.time);
  for (int i = 0; i < 30; ++i) {
    const auto r = resumed.step();
    ASSERT_EQ(r.from, referenceTail[static_cast<std::size_t>(i)].from)
        << "step " << i;
    ASSERT_EQ(r.to, referenceTail[static_cast<std::size_t>(i)].to);
    ASSERT_EQ(r.dt, referenceTail[static_cast<std::size_t>(i)].dt);
  }
  EXPECT_EQ(resumedState.raw(), ref.state.raw());
  EXPECT_DOUBLE_EQ(resumed.time(), refEngine.time());
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeWithoutCacheAlsoBitExact) {
  World ref(4);
  EamEnergyModel refModel(ref.cet, ref.net, ref.eam);
  KmcConfig noCache = config(11);
  noCache.useVacancyCache = false;
  SerialEngine refEngine(ref.state, refModel, ref.cet, noCache);
  for (int i = 0; i < 20; ++i) refEngine.step();
  const std::string path = tempPath("tkmc_checkpoint_nocache.chk");
  saveCheckpoint(path, ref.state, refEngine);
  const auto tail = refEngine.step();

  const CheckpointData data = loadCheckpoint(path);
  LatticeState resumedState = data.restoreState();
  World scratch(5);
  EamEnergyModel model(scratch.cet, scratch.net, scratch.eam);
  SerialEngine resumed(resumedState, model, scratch.cet, noCache);
  resumed.restore(data.engine);
  const auto r = resumed.step();
  EXPECT_EQ(r.from, tail.from);
  EXPECT_EQ(r.to, tail.to);
  EXPECT_EQ(r.dt, tail.dt);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(loadCheckpoint("/no/such/file.chk"), Error);
}

TEST(Checkpoint, CorruptFileThrows) {
  const std::string path = tempPath("tkmc_checkpoint_corrupt.chk");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not-a-checkpoint 7\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(loadCheckpoint(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedOccupationThrows) {
  World w(6);
  EamEnergyModel model(w.cet, w.net, w.eam);
  SerialEngine engine(w.state, model, w.cet, config(13));
  const std::string path = tempPath("tkmc_checkpoint_trunc.chk");
  saveCheckpoint(path, w.state, engine);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 200);
  EXPECT_THROW(loadCheckpoint(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tkmc
