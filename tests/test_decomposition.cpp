#include "parallel/decomposition.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tkmc {
namespace {

TEST(Decomposition, RankCoordRoundTrip) {
  const Decomposition d({24, 24, 24}, {2, 3, 4});
  EXPECT_EQ(d.rankCount(), 24);
  for (int r = 0; r < d.rankCount(); ++r)
    EXPECT_EQ(d.rankAt(d.rankCoord(r)), r);
}

TEST(Decomposition, ExtentDividesEvenly) {
  const Decomposition d({24, 12, 8}, {2, 3, 4});
  EXPECT_EQ(d.extentCells(), (Vec3i{12, 4, 2}));
  EXPECT_THROW(Decomposition({10, 10, 10}, {3, 2, 2}), Error);
}

TEST(Decomposition, OriginsTileTheBox) {
  const Decomposition d({8, 8, 8}, {2, 2, 2});
  EXPECT_EQ(d.originCells(0), (Vec3i{0, 0, 0}));
  EXPECT_EQ(d.originCells(1), (Vec3i{4, 0, 0}));
  EXPECT_EQ(d.originCells(2), (Vec3i{0, 4, 0}));
  EXPECT_EQ(d.originCells(7), (Vec3i{4, 4, 4}));
}

TEST(Decomposition, OwnerOfSiteIsConsistentWithOrigins) {
  const Decomposition d({8, 8, 8}, {2, 2, 2});
  for (int r = 0; r < d.rankCount(); ++r) {
    const Vec3i o = d.originCells(r);
    const Vec3i e = d.extentCells();
    // Probe a corner and the centre of the owned region.
    EXPECT_EQ(d.ownerOfSite({2 * o.x, 2 * o.y, 2 * o.z}), r);
    EXPECT_EQ(d.ownerOfSite({2 * o.x + e.x, 2 * o.y + e.y, 2 * o.z + e.z}), r);
  }
}

TEST(Decomposition, OwnerOfSiteWrapsPeriodically) {
  const Decomposition d({8, 8, 8}, {2, 2, 2});
  EXPECT_EQ(d.ownerOfSite({-1, -1, -1}), d.ownerOfSite({15, 15, 15}));
  EXPECT_EQ(d.ownerOfSite({16, 0, 0}), d.ownerOfSite({0, 0, 0}));
}

TEST(Decomposition, EverySiteHasExactlyOneOwner) {
  const Decomposition d({4, 4, 4}, {2, 2, 2});
  std::vector<int> counts(static_cast<std::size_t>(d.rankCount()), 0);
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y)
      for (int z = 0; z < 8; ++z) {
        if ((x & 1) != (y & 1) || (y & 1) != (z & 1)) continue;
        const int owner = d.ownerOfSite({x, y, z});
        ASSERT_GE(owner, 0);
        ASSERT_LT(owner, d.rankCount());
        ++counts[static_cast<std::size_t>(owner)];
      }
  // 4^3 cells * 2 sites over 8 equal ranks.
  for (int c : counts) EXPECT_EQ(c, 16);
}

TEST(Decomposition, NeighborRanksWrap) {
  const Decomposition d({8, 8, 8}, {2, 2, 2});
  EXPECT_EQ(d.neighborRank(0, {1, 0, 0}), 1);
  EXPECT_EQ(d.neighborRank(1, {1, 0, 0}), 0);  // wraps
  EXPECT_EQ(d.neighborRank(0, {-1, 0, 0}), 1);
  EXPECT_EQ(d.neighborRank(0, {0, 1, 0}), 2);
  EXPECT_EQ(d.neighborRank(0, {0, 0, 1}), 4);
  EXPECT_EQ(d.neighborRank(0, {1, 1, 1}), 7);
}

TEST(GrowRankGrid, EnoughSparesKeepTheOriginalGrid) {
  EXPECT_EQ(growRankGrid({2, 2, 1}, 3, 1), (Vec3i{2, 2, 1}));
  EXPECT_EQ(growRankGrid({2, 2, 2}, 7, 1), (Vec3i{2, 2, 2}));
  EXPECT_EQ(growRankGrid({2, 2, 2}, 5, 3), (Vec3i{2, 2, 2}));
  EXPECT_EQ(growRankGrid({2, 2, 2}, 5, 9), (Vec3i{2, 2, 2}));  // surplus pool
  EXPECT_EQ(growRankGrid({2, 2, 1}, 4, 0), (Vec3i{2, 2, 1}));  // nothing lost
}

TEST(GrowRankGrid, NoSparesDegeneratesToShrink) {
  EXPECT_EQ(growRankGrid({2, 2, 1}, 3, 0), shrinkRankGrid({2, 2, 1}, 3));
  EXPECT_EQ(growRankGrid({2, 2, 2}, 7, 0), shrinkRankGrid({2, 2, 2}, 7));
  EXPECT_EQ(growRankGrid({3, 1, 1}, 2, 0), (Vec3i{1, 1, 1}));
}

TEST(GrowRankGrid, PartialPoolStillYieldsTheLargestFittingGrid) {
  // 3 survivors of a 4x2x1 world plus 2 spares: shrink must fit 5
  // available ranks, not just the survivors.
  EXPECT_EQ(growRankGrid({4, 2, 1}, 3, 2), (Vec3i{2, 2, 1}));
  EXPECT_EQ(growRankGrid({4, 2, 1}, 3, 0), (Vec3i{1, 2, 1}));
  EXPECT_EQ(growRankGrid({2, 2, 2}, 3, 1), shrinkRankGrid({2, 2, 2}, 4));
}

TEST(GrowRankGrid, NegativeSparePoolThrows) {
  EXPECT_THROW((void)growRankGrid({2, 2, 1}, 3, -1), Error);
}

}  // namespace
}  // namespace tkmc
