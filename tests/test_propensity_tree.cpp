#include "kmc/propensity_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tkmc {
namespace {

TEST(PropensityTree, TotalIsSumOfLeaves) {
  PropensityTree tree(5);
  const double values[5] = {1.0, 2.5, 0.0, 4.0, 0.5};
  for (int i = 0; i < 5; ++i) tree.update(i, values[i]);
  EXPECT_DOUBLE_EQ(tree.total(), 8.0);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(tree.leaf(i), values[i]);
}

TEST(PropensityTree, UpdateOverwritesLeaf) {
  PropensityTree tree(3);
  tree.update(1, 2.0);
  tree.update(1, 5.0);
  EXPECT_DOUBLE_EQ(tree.total(), 5.0);
}

TEST(PropensityTree, SelectFindsCorrectIntervals) {
  PropensityTree tree(4);
  tree.update(0, 1.0);
  tree.update(1, 2.0);
  tree.update(2, 3.0);
  tree.update(3, 4.0);
  EXPECT_EQ(tree.select(0.0), 0);
  EXPECT_EQ(tree.select(0.999), 0);
  EXPECT_EQ(tree.select(1.0), 1);
  EXPECT_EQ(tree.select(2.999), 1);
  EXPECT_EQ(tree.select(3.0), 2);
  EXPECT_EQ(tree.select(5.999), 2);
  EXPECT_EQ(tree.select(6.0), 3);
  EXPECT_EQ(tree.select(9.999), 3);
}

TEST(PropensityTree, SelectSkipsZeroLeaves) {
  PropensityTree tree(5);
  tree.update(1, 2.0);
  tree.update(3, 3.0);
  EXPECT_EQ(tree.select(0.5), 1);
  EXPECT_EQ(tree.select(1.999), 1);
  EXPECT_EQ(tree.select(2.0), 3);
  EXPECT_EQ(tree.select(4.999), 3);
}

TEST(PropensityTree, SelectAtTotalBoundaryReturnsValidLeaf) {
  PropensityTree tree(3);
  tree.update(0, 1.0);
  tree.update(2, 1.0);
  const int leaf = tree.select(tree.total());
  EXPECT_GE(leaf, 0);
  EXPECT_LT(leaf, 3);
  EXPECT_GT(tree.leaf(leaf), 0.0);
}

TEST(PropensityTree, SelectAgreesWithLinearScan) {
  Rng rng(91);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniformBelow(40));
    PropensityTree tree(n);
    for (int i = 0; i < n; ++i) {
      const double v = rng.uniform() < 0.3 ? 0.0 : rng.uniform() * 10;
      tree.update(i, v);
    }
    if (tree.total() <= 0.0) continue;
    for (int q = 0; q < 100; ++q) {
      const double target = rng.uniform() * tree.total();
      EXPECT_EQ(tree.select(target), tree.selectLinear(target))
          << "n=" << n << " target=" << target;
    }
  }
}

TEST(PropensityTree, SelectAndLinearAgreeAtBoundariesWithZeroTail) {
  // Regression: with a zero-rate tail leaf and target == total (a legal
  // draw when rng.uniform() returns values that round up), selectLinear
  // used to run off the end and return the empty tail while select
  // walked back to the last non-empty leaf — a silent trajectory
  // divergence between the tree and linear engines.
  PropensityTree tree(3);
  tree.update(0, 1.0);
  tree.update(1, 2.0);
  tree.update(2, 0.0);  // zero-rate tail
  const double total = tree.total();
  EXPECT_EQ(tree.select(total), 1);
  EXPECT_EQ(tree.selectLinear(total), 1);
  EXPECT_EQ(tree.select(total), tree.selectLinear(total));
  // Just below the boundary they must also agree.
  EXPECT_EQ(tree.selectLinear(std::nextafter(total, 0.0)),
            tree.select(std::nextafter(total, 0.0)));
}

TEST(PropensityTree, SelectLinearRejectsNegativeTargetLikeSelect) {
  PropensityTree tree(2);
  tree.update(0, 1.0);
  EXPECT_THROW(tree.select(-0.5), Error);
  EXPECT_THROW(tree.selectLinear(-0.5), Error);
}

TEST(PropensityTree, SamplingFrequenciesMatchWeights) {
  PropensityTree tree(3);
  tree.update(0, 1.0);
  tree.update(1, 3.0);
  tree.update(2, 6.0);
  Rng rng(17);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    ++counts[static_cast<std::size_t>(tree.select(rng.uniform() * tree.total()))];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(PropensityTree, InternalSumsAreUpdateOrderIndependent) {
  // The Fig. 8 bit-identity relies on tree sums depending only on leaf
  // values, not on the order leaves were written.
  PropensityTree a(7), b(7);
  const double values[7] = {0.1, 2.0, 0.0, 5.5, 1.25, 0.75, 3.0};
  for (int i = 0; i < 7; ++i) a.update(i, values[i]);
  for (int i = 6; i >= 0; --i) b.update(i, values[i]);
  b.update(3, 0.0);
  b.update(3, values[3]);
  EXPECT_EQ(a.total(), b.total());
  for (double t = 0.0; t < a.total(); t += 0.37)
    EXPECT_EQ(a.select(t), b.select(t));
}

TEST(PropensityTree, ResizeClearsState) {
  PropensityTree tree(4);
  tree.update(0, 3.0);
  tree.resize(10);
  EXPECT_EQ(tree.leafCount(), 10);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
}

TEST(PropensityTree, NonPowerOfTwoLeafCounts) {
  for (int n : {1, 3, 5, 17, 33, 100}) {
    PropensityTree tree(n);
    for (int i = 0; i < n; ++i) tree.update(i, 1.0);
    EXPECT_DOUBLE_EQ(tree.total(), static_cast<double>(n));
    EXPECT_EQ(tree.select(static_cast<double>(n) - 0.5), n - 1);
  }
}

TEST(PropensityTree, InvalidAccessThrows) {
  PropensityTree tree(3);
  EXPECT_THROW(tree.update(3, 1.0), Error);
  EXPECT_THROW(tree.update(-1, 1.0), Error);
  EXPECT_THROW(tree.leaf(5), Error);
  PropensityTree empty(0);
  EXPECT_THROW(empty.select(0.0), Error);
}

TEST(PropensityForest, TotalsSumPerTypeSubtrees) {
  PropensityTree tree;
  tree.resizeForest(3, 4);
  EXPECT_EQ(tree.typeCount(), 3);
  EXPECT_EQ(tree.leafCount(), 4);
  tree.updateTyped(0, 0, 1.0);
  tree.updateTyped(0, 3, 2.0);
  tree.updateTyped(1, 1, 4.0);
  tree.updateTyped(2, 2, 8.0);
  EXPECT_DOUBLE_EQ(tree.typeTotal(0), 3.0);
  EXPECT_DOUBLE_EQ(tree.typeTotal(1), 4.0);
  EXPECT_DOUBLE_EQ(tree.typeTotal(2), 8.0);
  EXPECT_DOUBLE_EQ(tree.total(), 15.0);
  EXPECT_DOUBLE_EQ(tree.leafTyped(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(tree.leafTyped(1, 3), 0.0);
}

TEST(PropensityForest, SelectTypedPicksCumulativeTypeBands) {
  PropensityTree tree;
  tree.resizeForest(2, 3);
  tree.updateTyped(0, 0, 1.0);
  tree.updateTyped(0, 2, 2.0);  // type 0 band: [0, 3)
  tree.updateTyped(1, 1, 4.0);  // type 1 band: [3, 7)
  const PropensityTree::Pick a = tree.selectTyped(0.5);
  EXPECT_EQ(a.type, 0);
  EXPECT_EQ(a.index, 0);
  const PropensityTree::Pick b = tree.selectTyped(2.999);
  EXPECT_EQ(b.type, 0);
  EXPECT_EQ(b.index, 2);
  const PropensityTree::Pick c = tree.selectTyped(3.0);
  EXPECT_EQ(c.type, 1);
  EXPECT_EQ(c.index, 1);
  const PropensityTree::Pick d = tree.selectTyped(6.999);
  EXPECT_EQ(d.type, 1);
  EXPECT_EQ(d.index, 1);
}

TEST(PropensityForest, BoundaryWalksBackOverEmptyTrailingSubtrees) {
  // target == total() with empty trailing subtrees must walk back to
  // the last type with propensity — and within it, the last non-empty
  // leaf — in both the tree walk and the linear scan.
  PropensityTree tree;
  tree.resizeForest(3, 3);
  tree.updateTyped(0, 0, 1.0);
  tree.updateTyped(1, 1, 2.0);
  // type 2 stays empty; leaf (1, 2) stays a zero tail inside type 1.
  const double total = tree.total();
  const PropensityTree::Pick walk = tree.selectTyped(total);
  EXPECT_EQ(walk.type, 1);
  EXPECT_EQ(walk.index, 1);
  const PropensityTree::Pick linear = tree.selectLinearTyped(total);
  EXPECT_EQ(linear.type, walk.type);
  EXPECT_EQ(linear.index, walk.index);
}

TEST(PropensityForest, SelectTypedAgreesWithLinearTyped) {
  Rng rng(92);
  for (int trial = 0; trial < 50; ++trial) {
    const int types = 1 + static_cast<int>(rng.uniformBelow(4));
    const int n = 1 + static_cast<int>(rng.uniformBelow(20));
    PropensityTree tree;
    tree.resizeForest(types, n);
    for (int t = 0; t < types; ++t)
      for (int i = 0; i < n; ++i) {
        const double v = rng.uniform() < 0.4 ? 0.0 : rng.uniform() * 10;
        tree.updateTyped(t, i, v);
      }
    if (tree.total() <= 0.0) continue;
    for (int q = 0; q < 100; ++q) {
      const double target = rng.uniform() * tree.total();
      const PropensityTree::Pick a = tree.selectTyped(target);
      const PropensityTree::Pick b = tree.selectLinearTyped(target);
      EXPECT_EQ(a.type, b.type) << "types=" << types << " target=" << target;
      EXPECT_EQ(a.index, b.index) << "types=" << types << " target=" << target;
    }
    // The fp boundary draw must also agree.
    const PropensityTree::Pick a = tree.selectTyped(tree.total());
    const PropensityTree::Pick b = tree.selectLinearTyped(tree.total());
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.index, b.index);
    EXPECT_GT(tree.leafTyped(a.type, a.index), 0.0);
  }
}

TEST(PropensityForest, SingleTypeForestMatchesLegacySelect) {
  // The bit-identity of the catalog refactor rests on the one-type
  // forest degenerating exactly to the historical single tree.
  Rng rng(93);
  PropensityTree forest;
  forest.resizeForest(1, 11);
  PropensityTree legacy(11);
  for (int i = 0; i < 11; ++i) {
    const double v = rng.uniform() < 0.3 ? 0.0 : rng.uniform() * 5;
    forest.updateTyped(0, i, v);
    legacy.update(i, v);
  }
  EXPECT_EQ(forest.total(), legacy.total());
  for (int q = 0; q < 200; ++q) {
    const double target = rng.uniform() * legacy.total();
    const PropensityTree::Pick pick = forest.selectTyped(target);
    EXPECT_EQ(pick.type, 0);
    EXPECT_EQ(pick.index, legacy.select(target));
    EXPECT_EQ(forest.selectLinearTyped(target).index,
              legacy.selectLinear(target));
  }
}

TEST(PropensityForest, ResizeForestValidatesAndClears) {
  PropensityTree tree(4);
  tree.update(1, 3.0);
  tree.resizeForest(2, 6);
  EXPECT_EQ(tree.typeCount(), 2);
  EXPECT_EQ(tree.leafCount(), 6);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
  EXPECT_THROW(tree.resizeForest(0, 4), Error);
  EXPECT_THROW(tree.updateTyped(2, 0, 1.0), Error);
  EXPECT_THROW(tree.updateTyped(-1, 0, 1.0), Error);
  EXPECT_THROW(tree.leafTyped(2, 0), Error);
}

}  // namespace
}  // namespace tkmc
