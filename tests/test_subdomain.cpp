#include "parallel/subdomain.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tkmc {
namespace {

LatticeState randomGlobal(const BccLattice& lat, std::uint64_t seed) {
  LatticeState state(lat);
  Rng rng(seed);
  state.randomAlloy(0.2, 5, rng);
  return state;
}

TEST(Subdomain, LoadFromMirrorsGlobalState) {
  const BccLattice lat(12, 12, 12, 2.87);
  const LatticeState global = randomGlobal(lat, 1);
  Subdomain sd(lat, {0, 0, 0}, {6, 6, 6}, 3);
  sd.loadFrom(global);
  // Every covered site (owned and ghost) must match the global lattice.
  for (int cz = -3; cz < 9; ++cz)
    for (int cy = -3; cy < 9; ++cy)
      for (int cx = -3; cx < 9; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i p{2 * cx + sub, 2 * cy + sub, 2 * cz + sub};
          ASSERT_EQ(sd.at(p), global.speciesAt(p));
        }
}

TEST(Subdomain, OwnsOnlyItsCells) {
  const BccLattice lat(12, 12, 12, 2.87);
  Subdomain sd(lat, {6, 0, 0}, {6, 6, 6}, 2);
  EXPECT_TRUE(sd.owns({12, 0, 0}));
  EXPECT_TRUE(sd.owns({23, 11, 11}));
  EXPECT_FALSE(sd.owns({10, 0, 0}));   // ghost (covered, not owned)
  EXPECT_TRUE(sd.covers({10, 0, 0}));
  // Cell x = 2 is outside the extended frame (owned cells 6..11 plus a
  // 2-cell ghost shell reaching wrapped cells 4..13).
  EXPECT_FALSE(sd.covers({4, 12, 12}));
}

TEST(Subdomain, CoversWrapsPeriodically) {
  const BccLattice lat(12, 12, 12, 2.87);
  Subdomain sd(lat, {0, 0, 0}, {6, 6, 6}, 2);
  // Ghost cell at x = -1 corresponds to wrapped x-cell 11.
  EXPECT_TRUE(sd.covers({22, 0, 0}));  // == -2 after unwrap
  EXPECT_FALSE(sd.owns({22, 0, 0}));
}

TEST(Subdomain, SetAndGetRoundTrip) {
  const BccLattice lat(12, 12, 12, 2.87);
  Subdomain sd(lat, {0, 0, 0}, {6, 6, 6}, 2);
  sd.set({4, 4, 4}, Species::kCu);
  EXPECT_EQ(sd.at({4, 4, 4}), Species::kCu);
  sd.set({-1, -1, -1}, Species::kVacancy);  // ghost write
  EXPECT_EQ(sd.at({-1, -1, -1}), Species::kVacancy);
}

TEST(Subdomain, RescanFindsOwnedVacanciesOnly) {
  const BccLattice lat(12, 12, 12, 2.87);
  LatticeState global(lat);
  global.setSpeciesAt({4, 4, 4}, Species::kVacancy);    // owned by (0,0,0)
  global.setSpeciesAt({20, 20, 20}, Species::kVacancy);  // owned elsewhere
  Subdomain sd(lat, {0, 0, 0}, {6, 6, 6}, 2);
  sd.loadFrom(global);
  ASSERT_EQ(sd.vacancies().size(), 1u);
  EXPECT_EQ(sd.vacancies()[0], (Vec3i{4, 4, 4}));
}

TEST(Subdomain, PackUnpackRoundTrip) {
  const BccLattice lat(12, 12, 12, 2.87);
  const LatticeState global = randomGlobal(lat, 2);
  Subdomain a(lat, {0, 0, 0}, {6, 6, 6}, 2);
  a.loadFrom(global);
  const Vec3i lo{2, 3, 1};
  const Vec3i hi{5, 6, 4};
  const auto payload = a.packCellBox(lo, hi);
  EXPECT_EQ(payload.size(), 3u * 3u * 3u * 2u);
  // Wipe the box, then restore it from the payload.
  Subdomain b = a;
  for (int cz = lo.z; cz < hi.z; ++cz)
    for (int cy = lo.y; cy < hi.y; ++cy)
      for (int cx = lo.x; cx < hi.x; ++cx)
        for (int sub = 0; sub < 2; ++sub)
          b.set({2 * (cx - 2) + sub, 2 * (cy - 2) + sub, 2 * (cz - 2) + sub},
                Species::kFe);
  b.unpackCellBox(lo, hi, payload);
  for (int cz = -2; cz < 8; ++cz)
    for (int cy = -2; cy < 8; ++cy)
      for (int cx = -2; cx < 8; ++cx)
        for (int sub = 0; sub < 2; ++sub) {
          const Vec3i p{2 * cx + sub, 2 * cy + sub, 2 * cz + sub};
          ASSERT_EQ(b.at(p), a.at(p));
        }
}

TEST(Subdomain, UnpackRejectsWrongSize) {
  const BccLattice lat(12, 12, 12, 2.87);
  Subdomain sd(lat, {0, 0, 0}, {6, 6, 6}, 2);
  EXPECT_THROW(sd.unpackCellBox({0, 0, 0}, {2, 2, 2}, {1, 2, 3}), Error);
}

TEST(Subdomain, OversizedExtendedFrameIsRejected) {
  const BccLattice lat(8, 8, 8, 2.87);
  // 6 + 2*2 = 10 > 8 cells: ambiguous periodic images.
  EXPECT_THROW(Subdomain(lat, {0, 0, 0}, {6, 6, 6}, 2), Error);
}

TEST(Subdomain, AtOutsideFrameThrows) {
  const BccLattice lat(12, 12, 12, 2.87);
  Subdomain sd(lat, {0, 0, 0}, {4, 4, 4}, 2);
  EXPECT_THROW(sd.at({16, 16, 16}), Error);
}

}  // namespace
}  // namespace tkmc
