#include "nnp/trainer.hpp"

#include <gtest/gtest.h>

namespace tkmc {
namespace {

// Synthetic regression task: energy is a fixed linear functional of the
// per-atom features. A ReLU MLP must drive the loss near zero.
std::vector<TrainSample> linearTask(int dim, int count, Rng& rng) {
  std::vector<double> weights(static_cast<std::size_t>(dim));
  for (double& w : weights) w = rng.uniform() * 2 - 1;
  std::vector<TrainSample> samples;
  for (int i = 0; i < count; ++i) {
    TrainSample s;
    s.nAtoms = 3 + static_cast<int>(rng.uniformBelow(4));
    s.features.resize(static_cast<std::size_t>(s.nAtoms) * dim);
    for (double& f : s.features) f = rng.uniform() * 2;
    s.energy = 0.0;
    for (int a = 0; a < s.nAtoms; ++a)
      for (int c = 0; c < dim; ++c)
        s.energy += weights[static_cast<std::size_t>(c)] *
                    s.features[static_cast<std::size_t>(a) * dim + c];
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(Trainer, FitStandardizationCentersFeatures) {
  Network net({2, 4, 1});
  Trainer trainer(net, {});
  std::vector<TrainSample> samples(1);
  samples[0].nAtoms = 2;
  samples[0].features = {1.0, 10.0, 3.0, 30.0};
  samples[0].energy = 0.0;
  trainer.fitStandardization(samples);
  EXPECT_DOUBLE_EQ(net.inputShift()[0], 2.0);
  EXPECT_DOUBLE_EQ(net.inputShift()[1], 20.0);
  EXPECT_NEAR(net.inputScale()[0], 1.0, 1e-12);   // std = 1
  EXPECT_NEAR(net.inputScale()[1], 0.1, 1e-12);   // std = 10
}

TEST(Trainer, LossDecreasesOnLinearTask) {
  Rng rng(31);
  const auto samples = linearTask(4, 32, rng);
  Network net({4, 16, 1});
  Rng init(32);
  net.initHe(init);
  Trainer::Config cfg;
  cfg.epochs = 1;
  cfg.learningRate = 1e-2;
  Trainer trainer(net, cfg);
  trainer.fitStandardization(samples);
  const double first = trainer.epoch(samples);
  double last = first;
  for (int e = 0; e < 60; ++e) last = trainer.epoch(samples);
  EXPECT_LT(last, first * 0.05);
}

TEST(Trainer, TrainRunsFullSchedule) {
  Rng rng(41);
  const auto samples = linearTask(3, 16, rng);
  Network net({3, 8, 1});
  Rng init(42);
  net.initHe(init);
  Trainer::Config cfg;
  cfg.epochs = 80;
  cfg.learningRate = 1e-2;
  Trainer trainer(net, cfg);
  trainer.fitStandardization(samples);
  const double finalLoss = trainer.train(samples);
  EXPECT_LT(finalLoss, 0.05);
}

TEST(Trainer, EvaluateEnergyPerfectPredictionHasUnitR2) {
  Network net({2, 1});
  net.layer(0).weights = {1.0, 2.0};
  std::vector<TrainSample> samples;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    TrainSample s;
    s.nAtoms = 2;
    s.features = {rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    s.energy = 0.0;
    for (int a = 0; a < 2; ++a)
      s.energy += s.features[static_cast<std::size_t>(a) * 2] +
                  2.0 * s.features[static_cast<std::size_t>(a) * 2 + 1];
    samples.push_back(std::move(s));
  }
  const Metrics m = Trainer::evaluateEnergy(net, samples);
  EXPECT_NEAR(m.maePerAtom, 0.0, 1e-12);
  EXPECT_NEAR(m.r2, 1.0, 1e-12);
}

TEST(Trainer, EvaluateEnergyPenalizesConstantPredictor) {
  Network net({2, 1});  // all-zero weights -> predicts 0
  std::vector<TrainSample> samples;
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    TrainSample s;
    s.nAtoms = 1;
    s.features = {rng.uniform(), rng.uniform()};
    s.energy = 5.0 + rng.uniform();
    samples.push_back(std::move(s));
  }
  const Metrics m = Trainer::evaluateEnergy(net, samples);
  EXPECT_GT(m.maePerAtom, 4.0);
  EXPECT_LT(m.r2, 0.0);
}

TEST(Trainer, DeterministicGivenSeeds) {
  Rng r1(55), r2(55);
  const auto s1 = linearTask(3, 8, r1);
  const auto s2 = linearTask(3, 8, r2);
  Network n1({3, 8, 1}), n2({3, 8, 1});
  Rng i1(56), i2(56);
  n1.initHe(i1);
  n2.initHe(i2);
  Trainer::Config cfg;
  cfg.epochs = 5;
  Trainer t1(n1, cfg), t2(n2, cfg);
  t1.fitStandardization(s1);
  t2.fitStandardization(s2);
  EXPECT_DOUBLE_EQ(t1.train(s1), t2.train(s2));
  EXPECT_EQ(n1.layer(0).weights, n2.layer(0).weights);
}

}  // namespace
}  // namespace tkmc
