#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "kmc/eam_energy_model.hpp"
#include "parallel/coordinated_checkpoint.hpp"
#include "parallel/parallel_engine.hpp"
#include "parallel/rank_team.hpp"

namespace tkmc {
namespace {

namespace tm = telemetry;

constexpr double kCutoff = 4.0;

struct ParallelWorld {
  ParallelWorld(std::uint64_t seed, int cells = 16, int vacancies = 6)
      : cet(2.87, kCutoff), net(cet), eam(kCutoff),
        lattice(cells, cells, cells, 2.87), state(lattice) {
    Rng rng(seed);
    state.randomAlloy(0.12, vacancies, rng);
  }

  Cet cet;
  Net net;
  EamPotential eam;
  BccLattice lattice;
  LatticeState state;
};

std::string tempDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

ParallelConfig basicConfig(std::uint64_t seed, Vec3i grid, bool threaded) {
  ParallelConfig cfg;
  cfg.seed = seed;
  cfg.tStop = 5e-8;
  cfg.rankGrid = grid;
  cfg.threaded = threaded;
  return cfg;
}

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t discarded = 0;
  std::uint64_t cycles = 0;
  std::uint32_t hash = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult runEngine(std::uint64_t worldSeed, const ParallelConfig& cfg,
                    int cycles) {
  ParallelWorld w(worldSeed);
  EamEnergyModel model(w.cet, w.net, w.eam);
  ParallelEngine engine(w.state, model, w.cet, cfg);
  for (int c = 0; c < cycles; ++c) engine.runCycle();
  EXPECT_TRUE(engine.ghostsConsistent());
  return {engine.totalEvents(), engine.discardedEvents(), engine.cycles(),
          engine.assembleGlobalState().contentHash()};
}

// --- RankTeam ----------------------------------------------------------

TEST(RankTeam, RunsOneJobPerRankAndBarriers) {
  RankTeam team(8);
  std::vector<int> hits(8, 0);
  for (int round = 0; round < 100; ++round)
    team.run([&](int r) { ++hits[static_cast<std::size_t>(r)]; });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(hits[static_cast<std::size_t>(r)], 100);
}

TEST(RankTeam, RethrowsTheLowestFailingRanksException) {
  RankTeam team(4);
  for (int round = 0; round < 5; ++round) {
    try {
      team.run([](int r) {
        if (r >= 1) throw CommError("rank " + std::to_string(r) + " failed");
      });
      FAIL() << "expected a CommError";
    } catch (const CommError& e) {
      // Ranks 1..3 all threw; the barrier must deterministically surface
      // rank 1's error regardless of which thread finished last.
      EXPECT_STREQ(e.what(), "rank 1 failed");
    }
  }
  // The team stays usable after a throwing phase.
  std::vector<int> hits(4, 0);
  team.run([&](int r) { ++hits[static_cast<std::size_t>(r)]; });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(hits[static_cast<std::size_t>(r)], 1);
}

// --- Threaded backend determinism --------------------------------------

TEST(ThreadedEngine, MatchesInProcessBackendBitExactly) {
  // The paper-level acceptance for the backend swap: same deck, same
  // seed, same trajectory — bit-for-bit — whether the ranks run on one
  // thread or on a thread each. A full sector rotation (8 cycles) on a
  // flat and a full 3-D grid.
  for (const Vec3i grid : {Vec3i{2, 2, 1}, Vec3i{2, 2, 2}}) {
    SCOPED_TRACE("grid " + std::to_string(grid.x) + "x" +
                 std::to_string(grid.y) + "x" + std::to_string(grid.z));
    const RunResult sequential =
        runEngine(51, basicConfig(61, grid, /*threaded=*/false), 8);
    const RunResult threaded =
        runEngine(51, basicConfig(61, grid, /*threaded=*/true), 8);
    EXPECT_GT(sequential.events, 0u);
    EXPECT_TRUE(sequential == threaded);
  }
}

TEST(ThreadedEngine, ThreadedRunsAreReproducible) {
  const ParallelConfig cfg = basicConfig(62, {2, 2, 2}, /*threaded=*/true);
  const RunResult first = runEngine(52, cfg, 8);
  const RunResult second = runEngine(52, cfg, 8);
  EXPECT_TRUE(first == second);
}

TEST(ThreadedEngine, KeyedDropFaultsReproduceAcrossRuns) {
  // Channel-stream mode: which (channel, per-channel ordinal) frames get
  // dropped is a pure function of (seed, point, key), so two threaded
  // runs absorb exactly the same drops via ARQ and agree bit-for-bit —
  // trajectory AND injector report — despite arbitrary interleaving.
  const auto run = [](RunResult& result, std::uint64_t& drops,
                      std::uint64_t& retries) {
    ParallelWorld w(53);
    EamEnergyModel model(w.cet, w.net, w.eam);
    FaultInjector inj(17);
    inj.setChannelStreams(true);
    inj.armProbability("comm.drop", 0.02);
    FaultScope scope(inj);
    ParallelEngine engine(w.state, model, w.cet,
                          basicConfig(63, {2, 2, 1}, /*threaded=*/true));
    for (int c = 0; c < 8; ++c) engine.runCycle();
    EXPECT_TRUE(engine.ghostsConsistent());
    result = {engine.totalEvents(), engine.discardedEvents(), engine.cycles(),
              engine.assembleGlobalState().contentHash()};
    drops = inj.fireCount("comm.drop");
    const RecoveryStats stats = engine.recoveryStats();
    retries = stats.ghostRetries + stats.foldRetries;
  };
  RunResult firstResult, secondResult;
  std::uint64_t firstDrops = 0, secondDrops = 0;
  std::uint64_t firstRetries = 0, secondRetries = 0;
  run(firstResult, firstDrops, firstRetries);
  run(secondResult, secondDrops, secondRetries);
  EXPECT_TRUE(firstResult == secondResult);
  EXPECT_EQ(firstDrops, secondDrops);
  EXPECT_EQ(firstRetries, secondRetries);
  EXPECT_GT(firstDrops, 0u) << "deck too small to exercise the drop point";
  EXPECT_EQ(firstRetries, firstDrops) << "every drop should be absorbed by ARQ";
}

// --- Threaded fail-stop chaos soak -------------------------------------

ParallelConfig failstopConfig(std::uint64_t seed, const std::string& dir,
                              bool threaded) {
  ParallelConfig cfg = basicConfig(seed, {2, 2, 1}, threaded);
  cfg.checkpointDir = dir;
  cfg.checkpointCadence = 1;
  cfg.heartbeatIntervalMs = 5.0;
  cfg.heartbeatTimeoutMs = 20.0;
  return cfg;
}

void expectEveryCommittedEpochComplete(const std::string& dir) {
  CheckpointStore store(dir);
  for (const std::uint64_t epoch : store.epochs()) {
    EXPECT_NO_THROW({
      const EpochManifest manifest = store.loadManifest(epoch);
      const auto shards = store.loadShards(manifest);
      EXPECT_EQ(shards.size(), manifest.shards.size());
    }) << "committed epoch " << epoch
       << " references a missing or torn shard";
  }
}

/// Cross-backend recovery check: the threaded engine's post-recovery
/// trajectory must match a fresh *sequential* engine resumed from the
/// recovery epoch on the same shrunken grid, bit-exactly.
void expectMatchesFreshSequentialResume(ParallelEngine& engine,
                                        const std::string& dir) {
  ParallelWorld fresh(99);  // provides cet/model only; state comes from disk
  EamEnergyModel model(fresh.cet, fresh.net, fresh.eam);
  ParallelConfig cfg;
  cfg.tStop = 5e-8;
  cfg.rankGrid = engine.rankGrid();
  cfg.threaded = false;
  CheckpointStore store(dir);
  ParallelEngine resumed(model, fresh.cet, cfg, store,
                         engine.lastRecoveryEpoch());
  while (resumed.cycles() < engine.cycles()) resumed.runCycle();
  EXPECT_EQ(resumed.totalEvents(), engine.totalEvents());
  EXPECT_EQ(resumed.discardedEvents(), engine.discardedEvents());
  EXPECT_DOUBLE_EQ(resumed.time(), engine.time());
  EXPECT_EQ(resumed.assembleGlobalState().contentHash(),
            engine.assembleGlobalState().contentHash());
}

TEST(ThreadedEngineChaos, TwentySeededKillSchedulesAllRecoverBitExactly) {
  // The sequential soak from test_rank_failure, run on the threaded
  // backend: twenty seeded schedules each kill one rank at a random
  // point of the synchronization protocol. The RankFailure now surfaces
  // from a rank thread, crosses the team barrier, and drives the same
  // stop-the-world recovery; every run must conserve the physics, keep
  // every committed epoch loadable, and match a fresh sequential resume
  // from the recovery epoch bit-exactly.
  for (std::uint64_t s = 0; s < 20; ++s) {
    SCOPED_TRACE("schedule " + std::to_string(s));
    const std::string dir = tempDir("tkmc_threaded_chaos_" + std::to_string(s));
    ParallelWorld w(37);
    EamEnergyModel model(w.cet, w.net, w.eam);
    ParallelEngine engine(w.state, model, w.cet,
                          failstopConfig(47, dir, /*threaded=*/true));
    Rng pick(1000 + s);
    const std::uint64_t ordinal = 1 + pick.uniformBelow(100);
    FaultInjector inj(s);
    inj.armSchedule("comm.rank_kill", {ordinal});
    FaultScope scope(inj);
    for (int c = 0; c < 5; ++c) engine.runCycle();
    ASSERT_EQ(inj.triggerCount("comm.rank_kill"), 1u);
    ASSERT_EQ(engine.recoveryStats().rankFailures, 1u);
    ASSERT_EQ(engine.vacancyCount(), 6);
    ASSERT_TRUE(engine.ghostsConsistent());
    ASSERT_LT(engine.rankGrid().x * engine.rankGrid().y * engine.rankGrid().z,
              4);
    expectEveryCommittedEpochComplete(dir);
    expectMatchesFreshSequentialResume(engine, dir);
  }
}

// --- Keyed fault streams under interleaving -----------------------------

std::vector<std::vector<std::uint8_t>> keyedFirePattern(std::uint64_t seed,
                                                        bool concurrent) {
  constexpr int kKeys = 8;
  constexpr int kProbes = 200;
  FaultInjector inj(seed);
  inj.setChannelStreams(true);
  inj.armProbability("comm.drop", 0.5);
  std::vector<std::vector<std::uint8_t>> fired(
      kKeys, std::vector<std::uint8_t>(kProbes, 0));
  if (concurrent) {
    std::vector<std::thread> threads;
    threads.reserve(kKeys);
    for (int k = 0; k < kKeys; ++k)
      threads.emplace_back([&inj, &fired, k] {
        for (int p = 0; p < kProbes; ++p)
          fired[static_cast<std::size_t>(k)][static_cast<std::size_t>(p)] =
              inj.shouldFire("comm.drop", 1000 + static_cast<std::uint64_t>(k))
                  ? 1
                  : 0;
      });
    for (std::thread& t : threads) t.join();
  } else {
    // Round-robin across keys: a global probe order no thread schedule
    // would reproduce, which is exactly the point — per-key streams make
    // the global order irrelevant.
    for (int p = 0; p < kProbes; ++p)
      for (int k = 0; k < kKeys; ++k)
        fired[static_cast<std::size_t>(k)][static_cast<std::size_t>(p)] =
            inj.shouldFire("comm.drop", 1000 + static_cast<std::uint64_t>(k))
                ? 1
                : 0;
  }
  return fired;
}

TEST(FaultInjectorChannelStreams, KeyedFiringIsInterleavingIndependent) {
  const auto sequential = keyedFirePattern(7, /*concurrent=*/false);
  const auto threaded = keyedFirePattern(7, /*concurrent=*/true);
  EXPECT_EQ(sequential, threaded);
  // Sanity: the pattern is non-trivial and differs across keys.
  EXPECT_NE(sequential[0], sequential[1]);
  // And a different seed derives different per-key streams.
  EXPECT_NE(keyedFirePattern(8, false), sequential);
}

TEST(FaultInjectorChannelStreams, ScheduleOrdinalsCountPerKey) {
  FaultInjector inj(3);
  inj.setChannelStreams(true);
  inj.armSchedule("comm.corrupt", {2});
  // Ordinal 2 fires once per key, not once globally: each channel owns
  // its hit counter.
  for (const std::uint64_t key : {11ull, 22ull}) {
    EXPECT_FALSE(inj.shouldFire("comm.corrupt", key));
    EXPECT_TRUE(inj.shouldFire("comm.corrupt", key));
    EXPECT_FALSE(inj.shouldFire("comm.corrupt", key));
  }
  EXPECT_EQ(inj.fireCount("comm.corrupt"), 2u);
}

// --- Singleton hammers (TSan targets) -----------------------------------

TEST(ConcurrentTelemetry, MetricsAndTracerSurviveConcurrentWrites) {
  tm::resetAll();
  tm::ScopedEnable enable;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kOps; ++i) {
        tm::metrics().counter("hammer.count").inc();
        tm::metrics().gauge("hammer.gauge").set(static_cast<double>(i));
        tm::metrics().histogram("hammer.hist").observe(static_cast<double>(i));
        tm::tracer().instant("hammer.instant", t);
        tm::flightRecorder().lamportTick();
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tm::metrics().counter("hammer.count").value(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(tm::metrics().histogram("hammer.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  const std::string json = tm::metrics().toJson();
  EXPECT_NE(json.find("hammer.count"), std::string::npos);
  tm::resetAll();
}

TEST(ConcurrentFlightRecorder, IncidentDumpDuringAppendsStaysDecodable) {
  // The seqlock acceptance: dumpIncident() racing a storm of concurrent
  // ring appends must still publish CRC-sealed TKBB files that decode —
  // a torn slot may be skipped, never emitted.
  const std::string dir = tempDir("tkmc_threaded_blackbox");
  tm::FlightRecorder rec;
  rec.setCapacity(256);
  rec.configureRanks(2);
  rec.setDumpDir(dir);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int rank = 0; rank < 2; ++rank)
    writers.emplace_back([&rec, &stop, rank] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed))
        rec.record(rank, tm::BlackboxEventType::kMarker, 0, ++i);
    });
  int written = 0;
  for (int burst = 0; burst < 20; ++burst) written += rec.dumpIncident("soak");
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(written, 40);
  for (int rank = 0; rank < 2; ++rank) {
    const std::string path =
        (std::filesystem::path(dir) /
         ("blackbox_rank" + std::to_string(rank) + ".bin"))
            .string();
    const tm::FlightRecorder::Dump dump = tm::FlightRecorder::readDump(path);
    EXPECT_EQ(dump.rank, rank);
    EXPECT_LE(dump.events.size(), 256u);
    EXPECT_GE(dump.totalRecorded, dump.events.size());
    for (const tm::BlackboxEvent& ev : dump.events) EXPECT_EQ(ev.rank, rank);
  }
}

}  // namespace
}  // namespace tkmc
