#include "analysis/diffusion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "kmc/eam_energy_model.hpp"
#include "kmc/serial_engine.hpp"

namespace tkmc {
namespace {

TEST(DiffusionTracker, AccumulatesUnwrappedDisplacement) {
  const BccLattice lat(4, 4, 4, 2.0);
  DiffusionTracker tracker(lat, 1);
  tracker.recordHop(0, {0, 0, 0}, {1, 1, 1});
  tracker.recordHop(0, {1, 1, 1}, {2, 2, 2});
  const Vec3d r = tracker.displacement(0);
  EXPECT_DOUBLE_EQ(r.x, 2.0);
  EXPECT_DOUBLE_EQ(r.y, 2.0);
  EXPECT_DOUBLE_EQ(r.z, 2.0);
  EXPECT_EQ(tracker.hopCount(), 2u);
}

TEST(DiffusionTracker, UnwrapsAcrossPeriodicBoundary) {
  const BccLattice lat(4, 4, 4, 2.0);
  DiffusionTracker tracker(lat, 1);
  // Hop from (0,0,0) to (7,7,7) is one (-1,-1,-1) step via the boundary.
  tracker.recordHop(0, {0, 0, 0}, {7, 7, 7});
  const Vec3d r = tracker.displacement(0);
  EXPECT_DOUBLE_EQ(r.x, -1.0);
  EXPECT_DOUBLE_EQ(r.y, -1.0);
  EXPECT_DOUBLE_EQ(r.z, -1.0);
}

TEST(DiffusionTracker, ReturningWalkerHasZeroDisplacement) {
  const BccLattice lat(4, 4, 4, 2.87);
  DiffusionTracker tracker(lat, 1);
  tracker.recordHop(0, {0, 0, 0}, {1, 1, 1});
  tracker.recordHop(0, {1, 1, 1}, {0, 0, 0});
  EXPECT_NEAR(tracker.meanSquaredDisplacement(), 0.0, 1e-12);
}

TEST(DiffusionTracker, MsdAveragesOverWalkers) {
  const BccLattice lat(4, 4, 4, 2.0);
  DiffusionTracker tracker(lat, 2);
  tracker.recordHop(0, {0, 0, 0}, {1, 1, 1});  // R^2 = 3
  // Walker 1 stays put: MSD = 3 / 2.
  EXPECT_DOUBLE_EQ(tracker.meanSquaredDisplacement(), 1.5);
}

TEST(DiffusionTracker, DiffusionCoefficientUnits) {
  const BccLattice lat(4, 4, 4, 2.0);
  DiffusionTracker tracker(lat, 1);
  tracker.recordHop(0, {0, 0, 0}, {1, 1, 1});  // MSD = 3 A^2
  // D = 3 / (6 * 1s) * 1e-16 cm^2/A^2.
  EXPECT_NEAR(tracker.diffusionCoefficient(1.0), 0.5e-16, 1e-22);
  EXPECT_DOUBLE_EQ(tracker.diffusionCoefficient(0.0), 0.0);
}

TEST(DiffusionTracker, InvalidWalkerThrows) {
  const BccLattice lat(4, 4, 4, 2.0);
  DiffusionTracker tracker(lat, 2);
  EXPECT_THROW(tracker.recordHop(2, {0, 0, 0}, {1, 1, 1}), Error);
  EXPECT_THROW(tracker.displacement(-1), Error);
}

TEST(DiffusionTracker, VacancyDiffusivityMatchesRateLaw) {
  // Flat landscape: D = Gamma_total * l^2 / 6 with l^2 = 3 a^2 / 4 and
  // Gamma_total = 8 Gamma_0 exp(-Ea/kT). The engine-integrated estimate
  // must land on the analytic value.
  const double a = 2.87;
  const Cet cet(a, 4.0);
  const Net net(cet);
  const EamPotential eam(4.0);
  EamEnergyModel model(cet, net, eam);

  double sumD = 0.0;
  const int runs = 30;
  for (int run = 0; run < runs; ++run) {
    BccLattice lat(12, 12, 12, a);
    LatticeState state(lat);
    state.fill(Species::kFe);
    state.setSpeciesAt({12, 12, 12}, Species::kVacancy);
    KmcConfig cfg;
    cfg.seed = 400 + static_cast<std::uint64_t>(run);
    cfg.tEnd = 1e300;
    SerialEngine engine(state, model, cet, cfg);
    DiffusionTracker tracker(lat, 1);
    engine.setObserver(
        [&](const SerialEngine&, const SerialEngine::StepResult& r) {
          tracker.recordHop(0, r.from, r.to);
        });
    for (int i = 0; i < 400; ++i) engine.step();
    sumD += tracker.diffusionCoefficient(engine.time());
  }
  const double measured = sumD / runs;
  const double gammaTotal = 8.0 * kAttemptFrequency *
                            std::exp(-kActivationFe / (kBoltzmannEv * 573.0));
  const double expected = gammaTotal * (3.0 * a * a / 4.0) / 6.0 * 1e-16;
  EXPECT_NEAR(measured, expected, expected * 0.2);
}

}  // namespace
}  // namespace tkmc
