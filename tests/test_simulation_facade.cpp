#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace tkmc {
namespace {

SimulationConfig eamConfig(std::uint64_t seed) {
  SimulationConfig cfg;
  cfg.cells = 12;
  cfg.cutoff = 4.0;
  cfg.potential = SimulationConfig::Potential::kEam;
  cfg.vacancyCount = 3;
  cfg.seed = seed;
  return cfg;
}

TEST(Simulation, EamModeRunsOutOfTheBox) {
  Simulation sim(eamConfig(1));
  EXPECT_EQ(sim.state().countSpecies(Species::kVacancy), 3);
  const auto executed = sim.run(1e300, 50);
  EXPECT_EQ(executed, 50u);
  EXPECT_GT(sim.time(), 0.0);
  EXPECT_EQ(sim.steps(), 50u);
}

TEST(Simulation, VacancyConcentrationSizing) {
  SimulationConfig cfg = eamConfig(2);
  cfg.vacancyCount = -1;
  cfg.vacancyConcentration = 1e-3;
  Simulation sim(cfg);
  // 2 * 12^3 sites * 1e-3, rounded down, at least 1.
  EXPECT_EQ(sim.state().countSpecies(Species::kVacancy), 3);
}

TEST(Simulation, ClusterAnalysisTracksCu) {
  Simulation sim(eamConfig(3));
  const ClusterStats stats = sim.cuClusters();
  EXPECT_EQ(stats.totalAtoms, sim.state().countSpecies(Species::kCu));
  EXPECT_GT(stats.totalAtoms, 0);
}

TEST(Simulation, DeterministicForSameConfig) {
  Simulation a(eamConfig(4)), b(eamConfig(4));
  a.run(1e300, 40);
  b.run(1e300, 40);
  EXPECT_TRUE(a.state() == b.state());
  EXPECT_DOUBLE_EQ(a.time(), b.time());
}

TEST(Simulation, NnpModeSelfTrainsAndRuns) {
  SimulationConfig cfg = eamConfig(5);
  cfg.potential = SimulationConfig::Potential::kNnp;
  cfg.channels = {64, 8, 1};
  cfg.trainStructures = 8;
  cfg.trainEpochs = 2;
  Simulation sim(cfg);
  ASSERT_NE(sim.network(), nullptr);
  EXPECT_EQ(sim.network()->inputDim(), 64);
  EXPECT_EQ(sim.run(1e300, 10), 10u);
}

TEST(Simulation, ModelPathCachesTrainedPotential) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tkmc_facade_model.txt").string();
  std::remove(path.c_str());
  SimulationConfig cfg = eamConfig(6);
  cfg.potential = SimulationConfig::Potential::kNnp;
  cfg.channels = {64, 8, 1};
  cfg.trainStructures = 8;
  cfg.trainEpochs = 2;
  cfg.modelPath = path;
  {
    Simulation first(cfg);
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  // Second construction must load, not retrain: identical weights.
  Simulation second(cfg);
  const Network reloaded = Simulation::buildPotential(cfg);
  EXPECT_EQ(reloaded.layer(0).weights, second.network()->layer(0).weights);
  std::remove(path.c_str());
}

TEST(Simulation, CheckpointRoundTripThroughFacade) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tkmc_facade.chk").string();
  Simulation a(eamConfig(10));
  a.run(1e300, 25);
  a.writeCheckpoint(path);
  // Reference continues for 25 more events.
  a.run(1e300, 25);

  Simulation b(eamConfig(999));  // different seed: state fully overwritten
  b.restoreCheckpoint(loadCheckpoint(path));
  EXPECT_EQ(b.steps(), 25u);
  b.run(1e300, 25);
  EXPECT_TRUE(b.state() == a.state());
  EXPECT_DOUBLE_EQ(b.time(), a.time());
  std::remove(path.c_str());
}

TEST(Simulation, RestoreRejectsMismatchedBox) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tkmc_facade_bad.chk").string();
  Simulation a(eamConfig(11));
  a.writeCheckpoint(path);
  SimulationConfig other = eamConfig(11);
  other.cells = 10;
  Simulation b(other);
  EXPECT_THROW(b.restoreCheckpoint(loadCheckpoint(path)), Error);
  std::remove(path.c_str());
}

TEST(Simulation, RejectsBadChannelWidth) {
  SimulationConfig cfg = eamConfig(7);
  cfg.potential = SimulationConfig::Potential::kNnp;
  cfg.channels = {32, 8, 1};  // wrong input width
  EXPECT_THROW(Simulation sim(cfg), Error);
}

TEST(Simulation, CacheAndTreeTogglesPreserveTrajectory) {
  SimulationConfig base = eamConfig(8);
  SimulationConfig noCache = base;
  noCache.useVacancyCache = false;
  SimulationConfig noTree = base;
  noTree.useTree = false;
  Simulation a(base), b(noCache), c(noTree);
  a.run(1e300, 60);
  b.run(1e300, 60);
  c.run(1e300, 60);
  EXPECT_TRUE(a.state() == b.state());
  EXPECT_TRUE(a.state() == c.state());
}

}  // namespace
}  // namespace tkmc
