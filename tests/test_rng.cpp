#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tkmc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformOpenLeftNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniformOpenLeft();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
    ASSERT_TRUE(std::isfinite(std::log(u)));
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(123);
  double sum = 0.0, sumSq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sumSq += u * u;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformBelowStaysBelowBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.uniformBelow(bound), bound);
  }
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniformBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(5), b(5);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace tkmc
