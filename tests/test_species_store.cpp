#include "lattice/species_store.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace tkmc {
namespace {

TEST(SpeciesStore, StartsUniformWithNoMaterializedPages) {
  SpeciesStore store(10000);
  EXPECT_EQ(store.siteCount(), 10000);
  EXPECT_EQ(store.materializedPageCount(), 0);
  EXPECT_EQ(store.count(Species::kFe), 10000);
  EXPECT_EQ(store.count(Species::kCu), 0);
  EXPECT_EQ(store.count(Species::kVacancy), 0);
  for (std::int64_t id : {0LL, 4095LL, 4096LL, 9999LL})
    EXPECT_EQ(store.get(id), Species::kFe);
}

TEST(SpeciesStore, FillValueWriteKeepsPageCollapsed) {
  SpeciesStore store(SpeciesStore::kPageSites * 3);
  store.set(10, Species::kFe);  // writing the fill value is a no-op
  EXPECT_EQ(store.materializedPageCount(), 0);
  store.set(10, Species::kCu);  // first non-fill write materializes
  EXPECT_EQ(store.materializedPageCount(), 1);
  EXPECT_EQ(store.get(10), Species::kCu);
  EXPECT_EQ(store.get(11), Species::kFe);
  // Only the touched page pays; neighbours stay collapsed.
  store.set(SpeciesStore::kPageSites + 7, Species::kVacancy);
  EXPECT_EQ(store.materializedPageCount(), 2);
}

TEST(SpeciesStore, PacksFourSitesPerByteWithinAPage) {
  // All four slots of one byte hold independent values.
  SpeciesStore store(64);
  store.set(0, Species::kCu);
  store.set(1, Species::kVacancy);
  store.set(2, Species::kFe);
  store.set(3, Species::kCu);
  EXPECT_EQ(store.get(0), Species::kCu);
  EXPECT_EQ(store.get(1), Species::kVacancy);
  EXPECT_EQ(store.get(2), Species::kFe);
  EXPECT_EQ(store.get(3), Species::kCu);
  EXPECT_EQ(store.count(Species::kCu), 2);
  EXPECT_EQ(store.count(Species::kVacancy), 1);
  EXPECT_EQ(store.count(Species::kFe), 61);
}

TEST(SpeciesStore, FillResetsPagesAndCounts) {
  SpeciesStore store(5000);
  store.set(1, Species::kCu);
  store.set(4999, Species::kVacancy);
  store.fill(Species::kCu);
  EXPECT_EQ(store.materializedPageCount(), 0);
  EXPECT_EQ(store.count(Species::kCu), 5000);
  EXPECT_EQ(store.get(1), Species::kCu);
  EXPECT_EQ(store.get(4999), Species::kCu);
  // A non-fill write against the new fill value works as before.
  store.set(0, Species::kFe);
  EXPECT_EQ(store.get(0), Species::kFe);
  EXPECT_EQ(store.count(Species::kFe), 1);
  EXPECT_EQ(store.count(Species::kCu), 4999);
}

TEST(SpeciesStore, ForEachSiteStreamsUniformAndMaterializedPages) {
  SpeciesStore store(SpeciesStore::kPageSites + 100);  // partial last page
  store.set(3, Species::kCu);
  store.set(SpeciesStore::kPageSites + 99, Species::kVacancy);
  std::int64_t visited = 0;
  store.forEachSite([&](std::int64_t id, Species s) {
    ASSERT_EQ(id, visited);
    ASSERT_EQ(s, store.get(id));
    ++visited;
  });
  EXPECT_EQ(visited, store.siteCount());
}

TEST(SpeciesStore, EqualityAndHashAreCanonical) {
  // Materialization history must be invisible: set-then-revert equals
  // never-touched, and a store refilled to Cu equals one densely written
  // to Cu.
  SpeciesStore touched(9000), fresh(9000);
  touched.set(42, Species::kCu);
  touched.set(42, Species::kFe);
  EXPECT_EQ(touched.materializedPageCount(), 1);
  EXPECT_EQ(fresh.materializedPageCount(), 0);
  EXPECT_TRUE(touched == fresh);
  EXPECT_EQ(touched.contentHash(), fresh.contentHash());

  SpeciesStore filled(9000), written(9000);
  filled.fill(Species::kCu);
  for (std::int64_t i = 0; i < 9000; ++i) written.set(i, Species::kCu);
  EXPECT_TRUE(filled == written);
  EXPECT_EQ(filled.contentHash(), written.contentHash());

  written.set(8999, Species::kVacancy);
  EXPECT_TRUE(filled != written);
  EXPECT_NE(filled.contentHash(), written.contentHash());
}

TEST(SpeciesStore, SlackSlotsOfLastPageNeverLeakIntoComparison) {
  // Site counts that are not multiples of 4 (or of the page size) leave
  // slack 2-bit slots; two stores with different fill histories must
  // still compare equal on logical content alone.
  SpeciesStore a(4097), b(4097);
  a.fill(Species::kCu);
  for (std::int64_t i = 0; i < 4097; ++i) b.set(i, Species::kCu);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(SpeciesStore, MemoryFootprintTracksMaterialization) {
  SpeciesStore store(SpeciesStore::kPageSites * 64);  // 256 Ki sites
  const std::size_t uniform = store.memoryBytes();
  EXPECT_LT(store.bytesPerSite(), 0.05);
  store.set(0, Species::kCu);
  EXPECT_GE(store.memoryBytes(), uniform + SpeciesStore::kPageBytes);
  // Fully materialized: 2 bits/site plus bookkeeping, still ~0.25 B/site.
  for (std::int64_t p = 0; p < 64; ++p)
    store.set(p * SpeciesStore::kPageSites, Species::kCu);
  EXPECT_EQ(store.materializedPageCount(), 64);
  EXPECT_LT(store.bytesPerSite(), 0.30);
  EXPECT_GT(store.bytesPerSite(), 0.24);
}

TEST(SpeciesStore, PageHashesFingerprintPagesIndependently) {
  SpeciesStore store(3 * SpeciesStore::kPageSites);
  const std::vector<std::uint32_t> before = store.pageHashes();
  ASSERT_EQ(before.size(), 3u);
  // Uniform pages of the same fill hash identically.
  EXPECT_EQ(before[0], before[1]);
  EXPECT_EQ(store.pageHash(0), before[0]);
  EXPECT_TRUE(store.dirtyPages(before).empty());

  store.set(SpeciesStore::kPageSites + 7, Species::kCu);
  const std::vector<std::uint32_t> after = store.pageHashes();
  EXPECT_EQ(after[0], before[0]);
  EXPECT_NE(after[1], before[1]);
  EXPECT_EQ(after[2], before[2]);
  EXPECT_EQ(store.dirtyPages(before), (std::vector<std::int64_t>{1}));

  // Reverting the change restores the original hash: fingerprints track
  // content, not materialization history.
  store.set(SpeciesStore::kPageSites + 7, Species::kFe);
  EXPECT_EQ(store.pageHash(1), before[1]);
}

TEST(SpeciesStore, DirtyPagesBeyondTheBaselineAlwaysCount) {
  SpeciesStore store(2 * SpeciesStore::kPageSites);
  const std::vector<std::uint32_t> shortBaseline = {store.pageHash(0)};
  EXPECT_EQ(store.dirtyPages(shortBaseline),
            (std::vector<std::int64_t>{1}));
}

TEST(SpeciesStore, RunPageHashesMatchAnEquivalentStore) {
  // A one-byte-per-site run (a checkpoint shard's layout) must
  // fingerprint exactly like a SpeciesStore holding the same content —
  // including a partial final page with slack slots.
  const std::int64_t sites = SpeciesStore::kPageSites + 1234;
  std::vector<std::uint8_t> run(static_cast<std::size_t>(sites), 0);
  SpeciesStore store(sites);
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const auto id = static_cast<std::int64_t>(
        rng.uniformBelow(static_cast<std::uint64_t>(sites)));
    const auto s = static_cast<Species>(rng.uniformBelow(3));
    store.set(id, s);
    run[static_cast<std::size_t>(id)] = static_cast<std::uint8_t>(s);
  }
  EXPECT_EQ(SpeciesStore::runPageHashes(run), store.pageHashes());
}

TEST(SpeciesStore, RandomizedAgainstDenseVector) {
  SpeciesStore store(12345);
  std::vector<Species> dense(12345, Species::kFe);
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const auto id =
        static_cast<std::int64_t>(rng.uniformBelow(12345));
    const auto s = static_cast<Species>(rng.uniformBelow(3));
    store.set(id, s);
    dense[static_cast<std::size_t>(id)] = s;
  }
  std::int64_t counts[3] = {0, 0, 0};
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(store.get(static_cast<std::int64_t>(i)), dense[i]);
    ++counts[static_cast<int>(dense[i])];
  }
  for (int s = 0; s < 3; ++s)
    EXPECT_EQ(store.count(static_cast<Species>(s)), counts[s]);
}

}  // namespace
}  // namespace tkmc
