#include "nnp/force_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tkmc {
namespace {

// Small descriptor (2 (p,q) sets -> 4 features) keeps the
// finite-difference sweeps cheap.
Descriptor smallDescriptor() {
  return Descriptor({{3.0, 2.0}, {2.0, 3.0}}, 5.0);
}

LabeledStructure smallStructure(std::uint64_t seed) {
  const EamPotential oracle(5.0);
  DatasetConfig cfg;
  cfg.cellsX = cfg.cellsY = cfg.cellsZ = 2;  // 16 atoms
  cfg.jitterSigma = 0.15;
  Rng rng(seed);
  LabeledStructure ls;
  ls.structure = randomCell(cfg, rng);
  ls.energy = oracle.totalEnergy(ls.structure);
  ls.forces = oracle.forces(ls.structure);
  return ls;
}

TEST(ForceTrainer, PredictedForcesMatchDescriptorChainRule) {
  const Descriptor d = smallDescriptor();
  Network net({4, 6, 1});
  Rng rng(3);
  net.initHe(rng);
  ForceTrainer trainer(net, d, {});
  const LabeledStructure ls = smallStructure(5);
  const ForceSample sample = trainer.makeSample(ls);

  // Reference: the descriptor's own chain rule on the raw structure.
  const auto features = d.compute(ls.structure);
  std::vector<double> grads(features.size());
  for (std::size_t a = 0; a < ls.structure.size(); ++a)
    net.inputGradient(
        {features.data() + a * static_cast<std::size_t>(d.dim()),
         static_cast<std::size_t>(d.dim())},
        {grads.data() + a * static_cast<std::size_t>(d.dim()),
         static_cast<std::size_t>(d.dim())});
  const auto reference = d.forces(ls.structure, grads);
  const auto predicted = trainer.predictForces(sample);
  ASSERT_EQ(predicted.size(), reference.size());
  for (std::size_t a = 0; a < reference.size(); ++a) {
    EXPECT_NEAR(predicted[a].x, reference[a].x, 1e-10);
    EXPECT_NEAR(predicted[a].y, reference[a].y, 1e-10);
    EXPECT_NEAR(predicted[a].z, reference[a].z, 1e-10);
  }
}

TEST(ForceTrainer, WeightGradientsMatchFiniteDifferences) {
  // The decisive check: analytic d(loss)/dW — including the
  // double-backprop force term — against central differences.
  const Descriptor d = smallDescriptor();
  Network net({4, 6, 1});
  Rng rng(7);
  net.initHe(rng);
  net.setInputTransform({0.1, 0.2, 0.0, -0.1}, {1.2, 0.8, 1.0, 1.5});
  ForceTrainer::Config cfg;
  cfg.energyWeight = 1.0;
  cfg.forceWeight = 0.3;
  ForceTrainer trainer(net, d, cfg);
  const ForceSample sample = trainer.makeSample(smallStructure(9));

  trainer.lossAndGradients(sample);
  const std::vector<double> analytic = trainer.flatWeightGradients();

  const double h = 1e-6;
  std::size_t flat = 0;
  int checked = 0;
  for (int li = 0; li < net.numLayers(); ++li) {
    auto& weights = net.layer(li).weights;
    for (std::size_t w = 0; w < weights.size(); ++w, ++flat) {
      // Sample a subset of weights to keep the sweep fast but cover
      // every layer.
      if (w % 5 != 0) continue;
      const double orig = weights[w];
      weights[w] = orig + h;
      const double lp = trainer.lossAndGradients(sample);
      weights[w] = orig - h;
      const double lm = trainer.lossAndGradients(sample);
      weights[w] = orig;
      const double fd = (lp - lm) / (2 * h);
      EXPECT_NEAR(analytic[flat], fd, 1e-5 + 1e-4 * std::abs(fd))
          << "layer " << li << " weight " << w;
      ++checked;
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(ForceTrainer, EnergyOnlyGradientsMatchFiniteDifferencesToo) {
  // forceWeight = 0 reduces to the plain energy objective.
  const Descriptor d = smallDescriptor();
  Network net({4, 5, 1});
  Rng rng(11);
  net.initHe(rng);
  ForceTrainer::Config cfg;
  cfg.forceWeight = 0.0;
  ForceTrainer trainer(net, d, cfg);
  const ForceSample sample = trainer.makeSample(smallStructure(13));
  trainer.lossAndGradients(sample);
  const auto analytic = trainer.flatWeightGradients();
  const double h = 1e-6;
  auto& weights = net.layer(0).weights;
  for (std::size_t w = 0; w < weights.size(); w += 3) {
    const double orig = weights[w];
    weights[w] = orig + h;
    const double lp = trainer.lossAndGradients(sample);
    weights[w] = orig - h;
    const double lm = trainer.lossAndGradients(sample);
    weights[w] = orig;
    EXPECT_NEAR(analytic[w], (lp - lm) / (2 * h), 1e-6 + 1e-5 * std::abs(analytic[w]));
  }
}

TEST(ForceTrainer, TrainingReducesTheCombinedLoss) {
  const Descriptor d = smallDescriptor();
  Network net({4, 12, 1});
  Rng rng(15);
  net.initHe(rng);
  std::vector<LabeledStructure> data;
  for (int i = 0; i < 12; ++i) data.push_back(smallStructure(100 + i));
  const SpeciesBaseline baseline = SpeciesBaseline::fit(data);

  ForceTrainer::Config cfg;
  cfg.epochs = 1;
  cfg.learningRate = 3e-3;
  cfg.forceWeight = 0.05;
  ForceTrainer trainer(net, d, cfg);
  std::vector<ForceSample> samples;
  for (const auto& ls : data) samples.push_back(trainer.makeSample(ls, &baseline));

  const double first = trainer.epoch(samples);
  double last = first;
  for (int e = 0; e < 40; ++e) last = trainer.epoch(samples);
  EXPECT_LT(last, first * 0.5);
}

TEST(ForceTrainer, ForceMatchingImprovesForceFitOverEnergyOnly) {
  // Fine-tuning with the force term must cut the force residual relative
  // to continuing with the energy-only objective.
  const Descriptor d = smallDescriptor();
  std::vector<LabeledStructure> data;
  for (int i = 0; i < 16; ++i) data.push_back(smallStructure(200 + i));
  const SpeciesBaseline baseline = SpeciesBaseline::fit(data);

  auto forceRmse = [&](Network& net, ForceTrainer& tr,
                       const std::vector<ForceSample>& samples) {
    double sq = 0.0;
    std::size_t count = 0;
    for (const auto& s : samples) {
      const auto f = tr.predictForces(s);
      for (int a = 0; a < s.nAtoms; ++a) {
        const Vec3d r = f[static_cast<std::size_t>(a)] -
                        s.refForces[static_cast<std::size_t>(a)];
        sq += r.x * r.x + r.y * r.y + r.z * r.z;
        count += 3;
      }
    }
    (void)net;
    return std::sqrt(sq / static_cast<double>(count));
  };

  auto runVariant = [&](double forceWeight) {
    Network net({4, 12, 1});
    Rng rng(17);
    net.initHe(rng);
    ForceTrainer::Config cfg;
    cfg.epochs = 50;
    cfg.learningRate = 3e-3;
    cfg.forceWeight = forceWeight;
    cfg.seed = 21;
    ForceTrainer tr(net, d, cfg);
    std::vector<ForceSample> samples;
    for (const auto& ls : data) samples.push_back(tr.makeSample(ls, &baseline));
    tr.train(samples);
    return forceRmse(net, tr, samples);
  };

  const double energyOnly = runVariant(0.0);
  const double withForces = runVariant(0.2);
  EXPECT_LT(withForces, energyOnly);
}

}  // namespace
}  // namespace tkmc
