#include "nnp/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"

namespace tkmc {
namespace {

std::string tempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ModelIo, SaveLoadRoundTripIsExact) {
  Network net({4, 8, 8, 1});
  Rng rng(19);
  net.initHe(rng);
  net.setInputTransform({0.1, 0.2, 0.3, 0.4}, {1.0, 2.0, 3.0, 4.0});
  const std::string path = tempPath("tkmc_model_roundtrip.txt");
  saveNetwork(net, path);
  const Network loaded = loadNetwork(path);
  ASSERT_EQ(loaded.channels(), net.channels());
  EXPECT_EQ(loaded.inputShift(), net.inputShift());
  EXPECT_EQ(loaded.inputScale(), net.inputScale());
  for (int li = 0; li < net.numLayers(); ++li) {
    EXPECT_EQ(loaded.layer(li).weights, net.layer(li).weights);
    EXPECT_EQ(loaded.layer(li).bias, net.layer(li).bias);
  }
  std::remove(path.c_str());
}

TEST(ModelIo, LoadedNetworkPredictsIdentically) {
  Network net({4, 16, 1});
  Rng rng(20);
  net.initHe(rng);
  const std::string path = tempPath("tkmc_model_predict.txt");
  saveNetwork(net, path);
  const Network loaded = loadNetwork(path);
  Rng frng(21);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> f{frng.uniform(), frng.uniform(), frng.uniform(),
                          frng.uniform()};
    EXPECT_DOUBLE_EQ(loaded.atomEnergy(f), net.atomEnergy(f));
  }
  std::remove(path.c_str());
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(loadNetwork("/nonexistent/path/model.txt"), Error);
}

TEST(ModelIo, CorruptHeaderThrows) {
  const std::string path = tempPath("tkmc_model_corrupt.txt");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not-a-model 9\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(loadNetwork(path), Error);
  std::remove(path.c_str());
}

TEST(ModelIo, TruncatedFileThrows) {
  Network net({4, 8, 1});
  Rng rng(22);
  net.initHe(rng);
  const std::string path = tempPath("tkmc_model_trunc.txt");
  saveNetwork(net, path);
  // Truncate to half size.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(loadNetwork(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tkmc
