#include "tabulation/cet.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/constants.hpp"

namespace tkmc {
namespace {

TEST(Cet, PaperCountsAtStandardCutoff) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  EXPECT_EQ(cet.nLocal(), 112);   // paper Sec. 4.1.1
  EXPECT_EQ(cet.nRegion(), 253);  // paper Sec. 4.1.1
  EXPECT_EQ(cet.nAll(), cet.nRegion() + cet.nOut());
  EXPECT_GT(cet.nOut(), 0);
}

TEST(Cet, CenterIsFirstSite) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  EXPECT_EQ(cet.site(0), (Vec3i{0, 0, 0}));
}

TEST(Cet, JumpTargetsFollowFirstNeighborOrder) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  const auto& jumps = BccLattice::firstNeighborOffsets();
  for (int k = 0; k < kNumJumpDirections; ++k)
    EXPECT_EQ(cet.site(Cet::jumpTargetId(k)), jumps[static_cast<std::size_t>(k)]);
}

TEST(Cet, SitesAreUniqueAndOnLattice) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  std::set<std::tuple<int, int, int>> seen;
  for (int id = 0; id < cet.nAll(); ++id) {
    const Vec3i s = cet.site(id);
    EXPECT_TRUE(BccLattice::isLatticeSite(s));
    EXPECT_TRUE(seen.insert({s.x, s.y, s.z}).second);
  }
}

TEST(Cet, IdOfInvertsSite) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  for (int id = 0; id < cet.nAll(); ++id) EXPECT_EQ(cet.idOf(cet.site(id)), id);
  EXPECT_EQ(cet.idOf({99, 99, 99}), -1);
}

TEST(Cet, RegionContainsAllNeighborsOfCenterAnd1nnTargets) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  const BccLattice geom(8, 8, 8, kLatticeConstantFe);
  const auto within = geom.offsetsWithinCutoff(kDefaultCutoff);
  std::set<std::tuple<int, int, int>> region;
  for (int id = 0; id < cet.nRegion(); ++id) {
    const Vec3i s = cet.site(id);
    region.insert({s.x, s.y, s.z});
  }
  for (const Vec3i& d : within)
    EXPECT_TRUE(region.count({d.x, d.y, d.z})) << "neighbour of centre missing";
  for (const Vec3i& c : BccLattice::firstNeighborOffsets())
    for (const Vec3i& d : within) {
      const Vec3i t = c + d;
      EXPECT_TRUE(region.count({t.x, t.y, t.z}))
          << "neighbour of 1NN target missing";
    }
}

TEST(Cet, EveryNeighborOfARegionSiteIsInTheSystem) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  const BccLattice geom(8, 8, 8, kLatticeConstantFe);
  const auto within = geom.offsetsWithinCutoff(kDefaultCutoff);
  for (int id = 0; id < cet.nRegion(); ++id)
    for (const Vec3i& d : within)
      EXPECT_GE(cet.idOf(cet.site(id) + d), 0);
}

TEST(Cet, OuterSitesAreOutsideTheRegion) {
  const Cet cet(kLatticeConstantFe, kDefaultCutoff);
  // An outer site must be farther than the cutoff from the centre and
  // from every 1NN target (otherwise it would be a region site).
  const double cutSteps = 2.0 * kDefaultCutoff / kLatticeConstantFe;
  const double cut2 = cutSteps * cutSteps * (1.0 + 1e-12);
  for (int id = cet.nRegion(); id < cet.nAll(); ++id) {
    const Vec3i s = cet.site(id);
    EXPECT_GT(static_cast<double>(s.norm2()), cut2);
    for (const Vec3i& c : BccLattice::firstNeighborOffsets())
      EXPECT_GT(static_cast<double>((s - c).norm2()), cut2);
  }
}

class CetCutoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(CetCutoffSweep, StructuralInvariants) {
  const Cet cet(kLatticeConstantFe, GetParam());
  EXPECT_GE(cet.nRegion(), 9);  // centre + 8 targets at minimum
  EXPECT_GT(cet.nAll(), cet.nRegion());
  EXPECT_EQ(cet.site(0), (Vec3i{0, 0, 0}));
  // Region sites sorted by distance after the fixed 9-site prefix.
  for (int id = 10; id < cet.nRegion(); ++id)
    EXPECT_LE(cet.site(id - 1).norm2(), cet.site(id).norm2());
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, CetCutoffSweep,
                         ::testing::Values(2.6, 4.0, 5.8, 6.5));

TEST(Cet, ShortCutoffCountsAreConsistent) {
  const Cet cet(kLatticeConstantFe, kShortCutoff);
  EXPECT_EQ(cet.nLocal(), 64);
  EXPECT_LT(cet.nRegion(), 253);
  EXPECT_LT(cet.nAll(), 1181);
}

}  // namespace
}  // namespace tkmc
