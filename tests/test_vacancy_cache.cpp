#include "kmc/vacancy_cache.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tkmc {
namespace {

class VacancyCacheTest : public ::testing::Test {
 protected:
  VacancyCacheTest() : cet_(2.87, 4.0), lattice_(14, 14, 14, 2.87), state_(lattice_) {
    Rng rng(81);
    state_.randomAlloy(0.15, 4, rng);
  }

  Cet cet_;
  BccLattice lattice_;
  LatticeState state_;
};

TEST_F(VacancyCacheTest, RebuildGathersEveryVacancy) {
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(state_);
  ASSERT_EQ(cache.size(), 4);
  for (int v = 0; v < cache.size(); ++v) {
    EXPECT_TRUE(cache.isDirty(v));
    const Vet fresh = Vet::gather(cet_, state_, cache.center(v));
    EXPECT_EQ(cache.vet(v).data(), fresh.data());
  }
}

TEST_F(VacancyCacheTest, CachedVetsStayCoherentUnderRandomHops) {
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(state_);
  Rng rng(82);
  for (int step = 0; step < 300; ++step) {
    const int v = static_cast<int>(rng.uniformBelow(
        static_cast<std::uint64_t>(state_.vacancies().size())));
    const Vec3i from = lattice_.wrap(state_.vacancies()[static_cast<std::size_t>(v)]);
    const Vec3i to = lattice_.wrap(
        from + BccLattice::firstNeighborOffsets()[rng.uniformBelow(8)]);
    if (state_.speciesAt(to) == Species::kVacancy) continue;
    state_.hopVacancy(from, to);
    cache.applyHop(state_, v, from, to);
    // Every cached VET must equal a fresh gather — the invariant that
    // makes cache-on and cache-off trajectories bit-identical (Fig. 8).
    for (int u = 0; u < cache.size(); ++u) {
      const Vet fresh = Vet::gather(cet_, state_, cache.center(u));
      ASSERT_EQ(cache.vet(u).data(), fresh.data())
          << "step " << step << " vacancy " << u;
    }
  }
}

TEST_F(VacancyCacheTest, HopMarksOnlyNearbySystemsDirty) {
  // Two vacancies far apart: hopping one must not dirty the other.
  LatticeState isolated(lattice_);
  isolated.setSpeciesAt({0, 0, 0}, Species::kVacancy);
  isolated.setSpeciesAt({14, 14, 14}, Species::kVacancy);
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(isolated);
  cache.clearDirty(0);
  cache.clearDirty(1);
  isolated.hopVacancy({0, 0, 0}, {1, 1, 1});
  cache.applyHop(isolated, 0, {0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(cache.isDirty(0));   // the hopped vacancy itself
  EXPECT_FALSE(cache.isDirty(1));  // far away, untouched
}

TEST_F(VacancyCacheTest, NeighborSystemIsPatchedAndDirty) {
  LatticeState nearby(lattice_);
  nearby.setSpeciesAt({6, 6, 6}, Species::kVacancy);
  nearby.setSpeciesAt({10, 6, 6}, Species::kVacancy);  // within CET range
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(nearby);
  cache.clearDirty(0);
  cache.clearDirty(1);
  nearby.hopVacancy({6, 6, 6}, {7, 7, 7});
  cache.applyHop(nearby, 0, {6, 6, 6}, {7, 7, 7});
  EXPECT_TRUE(cache.isDirty(1));
  const Vet fresh = Vet::gather(cet_, nearby, cache.center(1));
  EXPECT_EQ(cache.vet(1).data(), fresh.data());
}

TEST_F(VacancyCacheTest, GatherCountStaysLowWithCache) {
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(state_);
  const std::uint64_t initialGathers = cache.gatherCount();
  EXPECT_EQ(initialGathers, 4u);
  state_.hopVacancy(lattice_.wrap(state_.vacancies()[0]),
                    lattice_.wrap(state_.vacancies()[0] + Vec3i{1, 1, 1}));
  cache.applyHop(state_, 0, lattice_.wrap(state_.vacancies()[0] - Vec3i{1, 1, 1}),
                 lattice_.wrap(state_.vacancies()[0]));
  // Exactly one additional gather: the hopped system only.
  EXPECT_EQ(cache.gatherCount(), initialGathers + 1);
}

TEST_F(VacancyCacheTest, RebuildGathersAreNotCountedAsMisses) {
  // Regression: the bulk gathers of rebuild() are cold fills, not cache
  // decisions. Counting them as misses dragged kmc.cache.hit_rate far
  // below the paper's ~98% on short runs (4 vacancies -> 4 phantom
  // misses before the first step).
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(state_);
  EXPECT_EQ(cache.gatherCount(), 4u);  // still visible as gathers
  EXPECT_EQ(cache.missCount(), 0u);    // but not as misses
  EXPECT_EQ(cache.hitCount(), 0u);
  EXPECT_EQ(cache.hitRate(), 0.0);  // no decisions yet (documented value)

  // A second rebuild (restore path) must not manufacture misses either.
  cache.rebuild(state_);
  EXPECT_EQ(cache.missCount(), 0u);
  EXPECT_EQ(cache.hitRate(), 0.0);
}

TEST_F(VacancyCacheTest, HoppedSystemRegatherIsExactlyOneMiss) {
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(state_);
  const Vec3i from = lattice_.wrap(state_.vacancies()[0]);
  const Vec3i to = lattice_.wrap(from + Vec3i{1, 1, 1});
  ASSERT_NE(state_.speciesAt(to), Species::kVacancy);
  state_.hopVacancy(from, to);
  cache.applyHop(state_, 0, from, to);
  // Steady state: the hopped vacancy's full re-gather is the only miss;
  // neighbour systems patched in place count as hits.
  EXPECT_EQ(cache.missCount(), 1u);
  EXPECT_EQ(cache.gatherCount(), 5u);
  const std::uint64_t total = cache.hitCount() + cache.missCount();
  EXPECT_EQ(cache.hitRate(),
            static_cast<double>(cache.hitCount()) / static_cast<double>(total));
}

TEST_F(VacancyCacheTest, MemoryBytesMatchPaperLayout) {
  VacancyCache cache(cet_, lattice_);
  cache.rebuild(state_);
  // 5 bytes per CET slot per vacancy (species + int32 global id).
  EXPECT_EQ(cache.memoryBytes(),
            4u * static_cast<std::size_t>(cet_.nAll()) * 5u);
}

}  // namespace
}  // namespace tkmc
