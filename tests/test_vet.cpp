#include "tabulation/vet.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tkmc {
namespace {

class VetTest : public ::testing::Test {
 protected:
  VetTest() : cet_(2.87, 4.0), lattice_(12, 12, 12, 2.87), state_(lattice_) {}

  Cet cet_;
  BccLattice lattice_;
  LatticeState state_;
};

TEST_F(VetTest, GatherReadsSpeciesRelativeToCenter) {
  const Vec3i center{6, 6, 6};
  state_.setSpeciesAt(center, Species::kVacancy);
  state_.setSpeciesAt(center + Vec3i{1, 1, 1}, Species::kCu);
  state_.setSpeciesAt(center + Vec3i{2, 0, 0}, Species::kCu);
  const Vet vet = Vet::gather(cet_, state_, center);
  ASSERT_EQ(vet.size(), cet_.nAll());
  EXPECT_EQ(vet[0], Species::kVacancy);
  EXPECT_EQ(vet[cet_.idOf({1, 1, 1})], Species::kCu);
  EXPECT_EQ(vet[cet_.idOf({2, 0, 0})], Species::kCu);
  EXPECT_EQ(vet[cet_.idOf({-1, -1, -1})], Species::kFe);
}

TEST_F(VetTest, GatherWrapsAcrossPeriodicBoundary) {
  const Vec3i center{0, 0, 0};
  state_.setSpeciesAt(center, Species::kVacancy);
  // (-1,-1,-1) wraps to (23,23,23).
  state_.setSpeciesAt({23, 23, 23}, Species::kCu);
  const Vet vet = Vet::gather(cet_, state_, center);
  EXPECT_EQ(vet[cet_.idOf({-1, -1, -1})], Species::kCu);
}

TEST_F(VetTest, GatherRequiresVacancyAtCenter) {
  EXPECT_THROW(Vet::gather(cet_, state_, {0, 0, 0}), Error);
}

TEST_F(VetTest, SwapExchangesEntries) {
  const Vec3i center{6, 6, 6};
  state_.setSpeciesAt(center, Species::kVacancy);
  state_.setSpeciesAt(center + Vec3i{1, 1, 1}, Species::kCu);
  Vet vet = Vet::gather(cet_, state_, center);
  const int target = Cet::jumpTargetId(7);  // offset (1,1,1) is last in order
  // Find the id whose site is (1,1,1) to be independent of ordering.
  const int id = cet_.idOf({1, 1, 1});
  vet.swap(0, id);
  EXPECT_EQ(vet[0], Species::kCu);
  EXPECT_EQ(vet[id], Species::kVacancy);
  vet.swap(0, id);
  EXPECT_EQ(vet[0], Species::kVacancy);
  EXPECT_EQ(vet[id], Species::kCu);
  (void)target;
}

TEST_F(VetTest, SetOverwritesEntry) {
  Vet vet(cet_.nAll());
  EXPECT_EQ(vet[5], Species::kFe);
  vet.set(5, Species::kCu);
  EXPECT_EQ(vet[5], Species::kCu);
}

TEST_F(VetTest, GatherSeesAllVacanciesInRange) {
  const Vec3i center{6, 6, 6};
  state_.setSpeciesAt(center, Species::kVacancy);
  state_.setSpeciesAt(center + Vec3i{2, 2, 0}, Species::kVacancy);
  const Vet vet = Vet::gather(cet_, state_, center);
  EXPECT_EQ(vet[cet_.idOf({2, 2, 0})], Species::kVacancy);
}

}  // namespace
}  // namespace tkmc
