#include "eam/eam_potential.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nnp/dataset.hpp"

namespace tkmc {
namespace {

Structure perfectBcc(int cells, double a) {
  Structure s;
  s.box = {cells * a, cells * a, cells * a};
  for (int x = 0; x < cells; ++x)
    for (int y = 0; y < cells; ++y)
      for (int z = 0; z < cells; ++z) {
        s.positions.push_back({x * a, y * a, z * a});
        s.species.push_back(Species::kFe);
        s.positions.push_back({(x + 0.5) * a, (y + 0.5) * a, (z + 0.5) * a});
        s.species.push_back(Species::kFe);
      }
  return s;
}

TEST(EamPotential, PairIsSymmetricInSpecies) {
  const EamPotential eam;
  for (double r : {2.2, 2.5, 3.0, 4.5, 6.0}) {
    EXPECT_DOUBLE_EQ(eam.pair(Species::kFe, Species::kCu, r),
                     eam.pair(Species::kCu, Species::kFe, r));
  }
}

TEST(EamPotential, PairVanishesAtCutoff) {
  const EamPotential eam(6.5);
  EXPECT_DOUBLE_EQ(eam.pair(Species::kFe, Species::kFe, 6.5), 0.0);
  EXPECT_DOUBLE_EQ(eam.pair(Species::kFe, Species::kFe, 7.0), 0.0);
  EXPECT_NEAR(eam.pair(Species::kFe, Species::kFe, 6.499), 0.0, 1e-5);
}

TEST(EamPotential, DensityVanishesAtCutoff) {
  const EamPotential eam(6.5);
  EXPECT_DOUBLE_EQ(eam.density(Species::kCu, 6.5), 0.0);
  EXPECT_GT(eam.density(Species::kCu, 2.5), 0.0);
}

TEST(EamPotential, PairIsAttractiveNearEquilibrium) {
  const EamPotential eam;
  EXPECT_LT(eam.pair(Species::kFe, Species::kFe, 2.5), 0.0);
  // Strongly repulsive at short range.
  EXPECT_GT(eam.pair(Species::kFe, Species::kFe, 1.4), 0.0);
}

TEST(EamPotential, EmbeddingIsNegativeAndConcave) {
  const EamPotential eam;
  EXPECT_LT(eam.embedding(Species::kFe, 1.0), 0.0);
  // Concavity (the many-body saturation EAM models): doubling the density
  // gains less than double the embedding energy.
  EXPECT_GT(eam.embedding(Species::kFe, 2.0),
            2.0 * eam.embedding(Species::kFe, 1.0));
  EXPECT_DOUBLE_EQ(eam.embedding(Species::kFe, 0.0), 0.0);
}

TEST(EamPotential, PairDerivativeMatchesFiniteDifference) {
  const EamPotential eam;
  const double h = 1e-6;
  for (double r : {2.0, 2.5, 3.3, 5.0, 5.9, 6.2}) {
    const double fd = (eam.pair(Species::kFe, Species::kCu, r + h) -
                       eam.pair(Species::kFe, Species::kCu, r - h)) /
                      (2 * h);
    EXPECT_NEAR(eam.pairDerivative(Species::kFe, Species::kCu, r), fd, 1e-6)
        << "r=" << r;
  }
}

TEST(EamPotential, DensityDerivativeMatchesFiniteDifference) {
  const EamPotential eam;
  const double h = 1e-6;
  for (double r : {2.0, 2.5, 3.3, 5.0, 5.9, 6.2}) {
    const double fd = (eam.density(Species::kCu, r + h) -
                       eam.density(Species::kCu, r - h)) /
                      (2 * h);
    EXPECT_NEAR(eam.densityDerivative(Species::kCu, r), fd, 1e-6) << "r=" << r;
  }
}

TEST(EamPotential, ForcesVanishOnPerfectLattice) {
  const EamPotential eam;
  // The box must exceed twice the cutoff: with shorter boxes the single
  // minimum-image convention breaks the inversion symmetry of each
  // atom's neighbour shell and leaves a spurious net force.
  const Structure s = perfectBcc(5, 2.87);
  for (const Vec3d& f : eam.forces(s)) {
    EXPECT_NEAR(f.x, 0.0, 1e-9);
    EXPECT_NEAR(f.y, 0.0, 1e-9);
    EXPECT_NEAR(f.z, 0.0, 1e-9);
  }
}

TEST(EamPotential, ForcesMatchFiniteDifferenceOfEnergy) {
  const EamPotential eam;
  DatasetConfig cfg;
  cfg.cellsX = cfg.cellsY = cfg.cellsZ = 2;
  Rng rng(5);
  Structure s = randomCell(cfg, rng);
  const auto forces = eam.forces(s);
  const double h = 1e-5;
  for (std::size_t atom : {std::size_t{0}, s.size() / 2, s.size() - 1}) {
    for (int axis = 0; axis < 3; ++axis) {
      double* coord = axis == 0 ? &s.positions[atom].x
                    : axis == 1 ? &s.positions[atom].y
                                : &s.positions[atom].z;
      const double original = *coord;
      *coord = original + h;
      const double ePlus = eam.totalEnergy(s);
      *coord = original - h;
      const double eMinus = eam.totalEnergy(s);
      *coord = original;
      const double fd = -(ePlus - eMinus) / (2 * h);
      const double analytic = axis == 0 ? forces[atom].x
                            : axis == 1 ? forces[atom].y
                                        : forces[atom].z;
      EXPECT_NEAR(analytic, fd, 1e-5) << "atom " << atom << " axis " << axis;
    }
  }
}

TEST(EamPotential, TotalEnergyIsNegativeForBoundCrystal) {
  const EamPotential eam;
  const Structure s = perfectBcc(3, 2.87);
  EXPECT_LT(eam.totalEnergy(s), 0.0);
}

TEST(EamPotential, PositiveHeatOfMixing) {
  // Swapping one Fe for Cu in an Fe matrix and one Cu for Fe in a Cu
  // matrix should cost energy relative to the pure phases — the demixing
  // tendency that drives Cu precipitation.
  const EamPotential eam;
  Structure fe = perfectBcc(3, 2.87);
  Structure cu = fe;
  for (auto& sp : cu.species) sp = Species::kCu;
  const double eFe = eam.totalEnergy(fe);
  const double eCu = eam.totalEnergy(cu);
  Structure mixed = fe;
  for (std::size_t i = 0; i < mixed.species.size(); i += 2)
    mixed.species[i] = Species::kCu;
  const double eMixed = eam.totalEnergy(mixed);
  EXPECT_GT(eMixed, 0.5 * (eFe + eCu));
}

TEST(EamPotential, AtomEnergyIgnoresVacancyNeighbors) {
  const EamPotential eam;
  std::vector<std::pair<Species, double>> withVac = {
      {Species::kFe, 2.5}, {Species::kVacancy, 2.5}, {Species::kCu, 2.9}};
  std::vector<std::pair<Species, double>> without = {{Species::kFe, 2.5},
                                                     {Species::kCu, 2.9}};
  EXPECT_DOUBLE_EQ(eam.atomEnergy(Species::kFe, withVac),
                   eam.atomEnergy(Species::kFe, without));
}

TEST(EamPotential, Eq7DecompositionMatchesAtomEnergy) {
  const EamPotential eam;
  std::vector<std::pair<Species, double>> nb = {
      {Species::kFe, 2.485}, {Species::kCu, 2.87}, {Species::kFe, 4.06}};
  const auto pd = eam.pairDensity(Species::kCu, nb);
  EXPECT_DOUBLE_EQ(
      0.5 * pd.pairSum + eam.embedding(Species::kCu, pd.densitySum),
      eam.atomEnergy(Species::kCu, nb));
}

}  // namespace
}  // namespace tkmc
